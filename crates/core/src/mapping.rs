//! Sample-to-bytecode resolution.
//!
//! "First the collector thread extracts the samples that are of
//! importance for the VM. Addresses outside the VM address space ... are
//! dropped immediately ... The next step is to find the Java method where
//! the event happened ... Finally the system determines the exact
//! bytecode instruction for each sample." (Section 4.2)
//!
//! The resolver keeps its own registry of compiled artifacts (the
//! monitoring module's mirror of the compiler's data structures — the
//! paper keeps the IR alive after compilation for the same purpose).
//!
//! With a *bounded* code cache the VM frees and reuses code-address
//! ranges, so a PC alone no longer names an artifact: a sample buffered
//! before an eviction can surface after the range was reassigned. Every
//! registered artifact therefore carries an epoch window
//! `[install_epoch, retire_epoch)`, and [`SampleResolver::resolve`]
//! takes the sample's capture-time epoch: only a *live* artifact
//! installed no later than the stamp may claim the PC. A sample whose
//! PC lands in a known range owned by no such artifact — it hit code
//! that has since been freed, or pre-dates the range's current tenant —
//! is [`ResolveFailure::Stale`]: counted and dropped, never
//! misattributed.

use hpmopt_bytecode::MethodId;
use hpmopt_vm::machine::{CompiledCode, Tier};

/// Epoch window sentinel: the artifact has not been retired.
const LIVE: u64 = u64::MAX;

/// Why a sample could not be attributed to a bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolveFailure {
    /// PC outside every registered code range (kernel, native libraries,
    /// or stale pre-registration code).
    ForeignPc,
    /// PC inside a method whose map has no entry there (opt-compiled code
    /// without the full-map extension).
    Unmapped,
    /// PC inside a known code range, but no live artifact installed at
    /// or before the sample's epoch stamp owns it: the code it hit was
    /// freed (evicted or replaced) before the sample was processed, or
    /// the sample pre-dates the range's current tenant. Attributing it
    /// would be wrong, so it is dropped.
    Stale,
}

/// A successfully resolved sample location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedPc {
    /// The containing method.
    pub method: MethodId,
    /// Tier of the artifact the PC belongs to.
    pub tier: Tier,
    /// Bytecode index within the method.
    pub bytecode_index: u32,
}

/// One registered artifact plus its retirement epoch.
#[derive(Debug, Clone)]
struct Registered {
    code: CompiledCode,
    /// First epoch at which this artifact's range no longer belongs to
    /// it ([`LIVE`] while the artifact is installed).
    retire_epoch: u64,
}

/// PC → bytecode resolver over a registry of compiled artifacts.
#[derive(Debug, Clone, Default)]
pub struct SampleResolver {
    /// Artifacts sorted by code start (the paper's sorted method table).
    /// Retired artifacts stay registered — their epoch windows are what
    /// keeps late samples honest — so starts can repeat once the bounded
    /// cache reuses a range.
    artifacts: Vec<Registered>,
}

impl SampleResolver {
    /// Create an empty resolver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a (re)compiled artifact. With the unbounded cache ranges
    /// never overlap and stale artifacts of recompiled methods stay
    /// registered, exactly like the immortal code space; with a bounded
    /// cache the same span may be re-registered after
    /// [`SampleResolver::retire`] closed the previous tenant's window.
    pub fn register(&mut self, code: CompiledCode) {
        let pos = self
            .artifacts
            .partition_point(|c| c.code.code_start < code.code_start);
        self.artifacts.insert(
            pos,
            Registered {
                code,
                retire_epoch: LIVE,
            },
        );
    }

    /// Close the epoch window of the live artifact starting at
    /// `code_start`: samples stamped `epoch` or later no longer resolve
    /// to it. Called from the code-retired hook with the post-free epoch.
    pub fn retire(&mut self, code_start: u64, epoch: u64) {
        if let Some(a) = self
            .artifacts
            .iter_mut()
            .find(|a| a.code.code_start == code_start && a.retire_epoch == LIVE)
        {
            a.retire_epoch = epoch;
        }
    }

    /// Resolve a sampled PC captured at code epoch `epoch`.
    ///
    /// # Errors
    ///
    /// [`ResolveFailure`] describing why the sample must be dropped.
    pub fn resolve(&self, pc: u64, epoch: u64) -> Result<ResolvedPc, ResolveFailure> {
        // Only artifacts starting at or before `pc` can contain it; the
        // common case (live, non-overlapping ranges) exits on the first
        // reverse-scan step.
        let hi = self.artifacts.partition_point(|c| c.code.code_start <= pc);
        let mut in_known_range = false;
        for a in self.artifacts[..hi].iter().rev() {
            if pc >= a.code.code_end() {
                continue;
            }
            in_known_range = true;
            // Retired artifacts never resolve: by the time a buffered
            // sample drains, the code it hit is gone and its counters may
            // already be torn down — dropping beats a late attribution.
            // A live artifact claims the PC only if the sample was
            // captured after its install, so pre-free samples cannot leak
            // onto a range's new tenant.
            if a.retire_epoch == LIVE && a.code.install_epoch <= epoch {
                let bytecode_index = a.code.bytecode_at(pc).ok_or(ResolveFailure::Unmapped)?;
                return Ok(ResolvedPc {
                    method: a.code.method,
                    tier: a.code.tier,
                    bytecode_index,
                });
            }
        }
        Err(if in_known_range {
            ResolveFailure::Stale
        } else {
            ResolveFailure::ForeignPc
        })
    }

    /// Number of registered artifacts (retired ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether no artifact is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Iterate over registered artifacts (address order).
    pub fn artifacts(&self) -> impl Iterator<Item = &CompiledCode> {
        self.artifacts.iter().map(|a| &a.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::{FieldType, Program};
    use hpmopt_vm::compiler::compile;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", &[("f", FieldType::Ref)]);
        let f = pb.field_id(c, "f").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(c);
        m.store(0);
        m.load(0);
        m.get_field(f);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn resolves_pc_to_bytecode() {
        let p = program();
        let id = p.entry();
        let code = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        let get_field_pc = code.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(code);
        let got = r.resolve(get_field_pc, 0).unwrap();
        assert_eq!(got.method, id);
        assert_eq!(got.bytecode_index, 3);
        assert_eq!(got.tier, Tier::Opt);
    }

    #[test]
    fn foreign_pcs_are_dropped() {
        let p = program();
        let code = compile(&p, p.entry(), Tier::Baseline, 0x4000_0000, true);
        let end = code.code_end();
        let mut r = SampleResolver::new();
        r.register(code);
        assert_eq!(r.resolve(0x1000, 0).unwrap_err(), ResolveFailure::ForeignPc);
        assert_eq!(r.resolve(end, 0).unwrap_err(), ResolveFailure::ForeignPc);
    }

    #[test]
    fn gc_point_only_maps_fail_between_points() {
        let p = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, false);
        let get_field_pc = code.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(code);
        assert_eq!(
            r.resolve(get_field_pc, 0).unwrap_err(),
            ResolveFailure::Unmapped
        );
    }

    #[test]
    fn empty_resolver_drops_everything_as_foreign() {
        let r = SampleResolver::new();
        assert!(r.is_empty());
        for pc in [0, 0x4000_0000, u64::MAX] {
            assert_eq!(r.resolve(pc, 0).unwrap_err(), ResolveFailure::ForeignPc);
        }
    }

    #[test]
    fn pc_in_gap_between_artifacts_is_foreign() {
        let p = program();
        let id = p.entry();
        let low = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        // Leave a hole between the artifacts; a PC inside it belongs to
        // neither (a stale or native code region).
        let gap_start = low.code_end();
        let high = compile(&p, id, Tier::Opt, gap_start + 0x1000, true);
        let gap_pc = gap_start + 0x800;
        let mut r = SampleResolver::new();
        r.register(low);
        r.register(high);
        assert_eq!(r.resolve(gap_pc, 0).unwrap_err(), ResolveFailure::ForeignPc);
        assert!(
            r.resolve(gap_start + 0x1000, 0).is_ok(),
            "gap end is mapped"
        );
    }

    #[test]
    fn overlapping_registration_resolves_deterministically() {
        // Two live artifacts over the same span (no retire between them)
        // must not panic or make resolution ambiguous: the same artifact
        // wins on every call.
        let p = program();
        let id = p.entry();
        let stale = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let fresh = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        let pc = fresh.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(stale);
        r.register(fresh);
        assert_eq!(r.len(), 2);
        let first = r.resolve(pc, 0).unwrap();
        for _ in 0..3 {
            assert_eq!(r.resolve(pc, 0).unwrap(), first, "stable across calls");
        }
        assert_eq!(first.method, id);
    }

    #[test]
    fn multiple_artifacts_resolve_independently() {
        let p = program();
        let id = p.entry();
        let base = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let opt_start = base.code_end();
        let opt = compile(&p, id, Tier::Opt, opt_start, true);
        let base_pc = base.mem_pc(3);
        let opt_pc = opt.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(opt);
        r.register(base);
        assert_eq!(r.len(), 2);
        assert_eq!(r.resolve(base_pc, 0).unwrap().tier, Tier::Baseline);
        assert_eq!(r.resolve(opt_pc, 0).unwrap().tier, Tier::Opt);
    }

    #[test]
    fn retired_range_goes_stale_then_new_tenant_resolves() {
        // The attribution-across-code-churn contract: a late sample with
        // a pre-free epoch must NOT resolve to the range's new tenant —
        // it goes stale — while a post-free sample resolves to the new
        // tenant and never to the evicted artifact.
        let p = program();
        let id = p.entry();
        let evicted = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let evicted_end = evicted.code_end();
        let pc = evicted.mem_pc(0);
        let mut r = SampleResolver::new();
        r.register(evicted);
        assert_eq!(r.resolve(pc, 0).unwrap().tier, Tier::Baseline);

        // The cache frees the range (epoch 0 → 1) and installs denser
        // opt code of the same method over it.
        r.retire(0x4000_0000, 1);
        let mut tenant = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        tenant.install_epoch = 1;
        let tenant_end = tenant.code_end();
        let tenant_pc = tenant.mem_pc(0);
        r.register(tenant);

        // Late sample, captured before the free: stale, not misattributed
        // to the new tenant even though its PC lies inside both ranges.
        assert_eq!(r.resolve(tenant_pc, 0).unwrap_err(), ResolveFailure::Stale);
        // Fresh sample: resolves to the new tenant.
        assert_eq!(r.resolve(tenant_pc, 1).unwrap().tier, Tier::Opt);
        // A PC past the (shorter) tenant but inside the retired baseline
        // artifact: known range, no live owner → stale at any epoch.
        assert!(tenant_end < evicted_end, "opt tenant must be denser");
        assert_eq!(
            r.resolve(evicted_end - 1, 5).unwrap_err(),
            ResolveFailure::Stale
        );
    }
}
