//! Sample-to-bytecode resolution.
//!
//! "First the collector thread extracts the samples that are of
//! importance for the VM. Addresses outside the VM address space ... are
//! dropped immediately ... The next step is to find the Java method where
//! the event happened ... Finally the system determines the exact
//! bytecode instruction for each sample." (Section 4.2)
//!
//! The resolver keeps its own registry of compiled artifacts (the
//! monitoring module's mirror of the compiler's data structures — the
//! paper keeps the IR alive after compilation for the same purpose).

use hpmopt_bytecode::MethodId;
use hpmopt_vm::machine::{CompiledCode, Tier};

/// Why a sample could not be attributed to a bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolveFailure {
    /// PC outside every registered code range (kernel, native libraries,
    /// or stale pre-registration code).
    ForeignPc,
    /// PC inside a method whose map has no entry there (opt-compiled code
    /// without the full-map extension).
    Unmapped,
}

/// A successfully resolved sample location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedPc {
    /// The containing method.
    pub method: MethodId,
    /// Tier of the artifact the PC belongs to.
    pub tier: Tier,
    /// Bytecode index within the method.
    pub bytecode_index: u32,
}

/// PC → bytecode resolver over a registry of compiled artifacts.
#[derive(Debug, Clone, Default)]
pub struct SampleResolver {
    /// Artifacts sorted by code start (the paper's sorted method table).
    artifacts: Vec<CompiledCode>,
}

impl SampleResolver {
    /// Create an empty resolver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a (re)compiled artifact. Ranges never overlap; stale
    /// artifacts of recompiled methods stay registered, exactly like the
    /// immortal code space.
    pub fn register(&mut self, code: CompiledCode) {
        let pos = self
            .artifacts
            .partition_point(|c| c.code_start < code.code_start);
        self.artifacts.insert(pos, code);
    }

    /// Resolve a sampled PC.
    ///
    /// # Errors
    ///
    /// [`ResolveFailure`] describing why the sample must be dropped.
    pub fn resolve(&self, pc: u64) -> Result<ResolvedPc, ResolveFailure> {
        let pos = self.artifacts.partition_point(|c| c.code_end() <= pc);
        let artifact = self
            .artifacts
            .get(pos)
            .filter(|c| c.code_start <= pc)
            .ok_or(ResolveFailure::ForeignPc)?;
        let bytecode_index = artifact.bytecode_at(pc).ok_or(ResolveFailure::Unmapped)?;
        Ok(ResolvedPc {
            method: artifact.method,
            tier: artifact.tier,
            bytecode_index,
        })
    }

    /// Number of registered artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether no artifact is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Iterate over registered artifacts (address order).
    pub fn artifacts(&self) -> impl Iterator<Item = &CompiledCode> {
        self.artifacts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::{FieldType, Program};
    use hpmopt_vm::compiler::compile;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", &[("f", FieldType::Ref)]);
        let f = pb.field_id(c, "f").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(c);
        m.store(0);
        m.load(0);
        m.get_field(f);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn resolves_pc_to_bytecode() {
        let p = program();
        let id = p.entry();
        let code = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        let get_field_pc = code.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(code);
        let got = r.resolve(get_field_pc).unwrap();
        assert_eq!(got.method, id);
        assert_eq!(got.bytecode_index, 3);
        assert_eq!(got.tier, Tier::Opt);
    }

    #[test]
    fn foreign_pcs_are_dropped() {
        let p = program();
        let code = compile(&p, p.entry(), Tier::Baseline, 0x4000_0000, true);
        let end = code.code_end();
        let mut r = SampleResolver::new();
        r.register(code);
        assert_eq!(r.resolve(0x1000).unwrap_err(), ResolveFailure::ForeignPc);
        assert_eq!(r.resolve(end).unwrap_err(), ResolveFailure::ForeignPc);
    }

    #[test]
    fn gc_point_only_maps_fail_between_points() {
        let p = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, false);
        let get_field_pc = code.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(code);
        assert_eq!(
            r.resolve(get_field_pc).unwrap_err(),
            ResolveFailure::Unmapped
        );
    }

    #[test]
    fn empty_resolver_drops_everything_as_foreign() {
        let r = SampleResolver::new();
        assert!(r.is_empty());
        for pc in [0, 0x4000_0000, u64::MAX] {
            assert_eq!(r.resolve(pc).unwrap_err(), ResolveFailure::ForeignPc);
        }
    }

    #[test]
    fn pc_in_gap_between_artifacts_is_foreign() {
        let p = program();
        let id = p.entry();
        let low = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        // Leave a hole between the artifacts; a PC inside it belongs to
        // neither (a stale or native code region).
        let gap_start = low.code_end();
        let high = compile(&p, id, Tier::Opt, gap_start + 0x1000, true);
        let gap_pc = gap_start + 0x800;
        let mut r = SampleResolver::new();
        r.register(low);
        r.register(high);
        assert_eq!(r.resolve(gap_pc).unwrap_err(), ResolveFailure::ForeignPc);
        assert!(r.resolve(gap_start + 0x1000).is_ok(), "gap end is mapped");
    }

    #[test]
    fn overlapping_registration_resolves_deterministically() {
        // Recompiling at an address that overlaps a stale artifact must
        // not panic or make resolution ambiguous: the artifact whose
        // range check passes first in address order wins, consistently.
        let p = program();
        let id = p.entry();
        let stale = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let fresh = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        let pc = fresh.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(stale);
        r.register(fresh);
        assert_eq!(r.len(), 2);
        let first = r.resolve(pc).unwrap();
        for _ in 0..3 {
            assert_eq!(r.resolve(pc).unwrap(), first, "stable across calls");
        }
        assert_eq!(first.method, id);
    }

    #[test]
    fn multiple_artifacts_resolve_independently() {
        let p = program();
        let id = p.entry();
        let base = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let opt_start = base.code_end();
        let opt = compile(&p, id, Tier::Opt, opt_start, true);
        let base_pc = base.mem_pc(3);
        let opt_pc = opt.mem_pc(3);
        let mut r = SampleResolver::new();
        r.register(opt);
        r.register(base);
        assert_eq!(r.len(), 2);
        assert_eq!(r.resolve(base_pc).unwrap().tier, Tier::Baseline);
        assert_eq!(r.resolve(opt_pc).unwrap().tier, Tier::Opt);
    }
}
