//! Execution-phase detection over per-field miss-rate series.
//!
//! "The rate of events for each reference field is measured throughout
//! the execution and this allows detecting phase changes in the
//! execution" (Section 5.3). This module provides that capability as a
//! simple online change-point detector: two adjacent sliding windows
//! over a rate series; when their means diverge by more than a
//! configurable ratio, a phase boundary is reported.
//!
//! The optimization pipeline itself does not need phases (decisions are
//! re-derived continuously), but embedders can use the detector to gate
//! expensive re-analysis to phase boundaries, as adaptive systems
//! typically do.

/// Phase-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Observations per window (two adjacent windows are compared).
    pub window: usize,
    /// Mean ratio (max/min) that constitutes a phase change.
    pub ratio: f64,
    /// Ignore windows whose mean is below this (noise floor).
    pub min_rate: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            window: 4,
            ratio: 2.0,
            min_rate: 0.05,
        }
    }
}

/// A detected phase boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseChange {
    /// Cycle timestamp of the observation that crossed the threshold.
    pub cycles: u64,
    /// Mean rate before the boundary.
    pub before: f64,
    /// Mean rate after the boundary.
    pub after: f64,
}

impl PhaseChange {
    /// Whether the new phase has a *higher* rate (e.g. the working set
    /// outgrew the cache).
    #[must_use]
    pub fn is_regression(&self) -> bool {
        self.after > self.before
    }
}

/// Online two-window change-point detector.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    config: PhaseConfig,
    history: Vec<(u64, f64)>,
    changes: Vec<PhaseChange>,
    /// Observations to skip after a detection (the windows must refill
    /// with new-phase data before another boundary is meaningful).
    cooldown: usize,
}

impl PhaseDetector {
    /// Create a detector.
    #[must_use]
    pub fn new(config: PhaseConfig) -> Self {
        PhaseDetector {
            config,
            history: Vec::new(),
            changes: Vec::new(),
            cooldown: 0,
        }
    }

    /// Feed one observation (cycle stamp, rate); returns the boundary if
    /// this observation completes one.
    pub fn observe(&mut self, cycles: u64, rate: f64) -> Option<PhaseChange> {
        self.history.push((cycles, rate));
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let w = self.config.window;
        if self.history.len() < 2 * w {
            return None;
        }
        let n = self.history.len();
        let mean = |s: &[(u64, f64)]| s.iter().map(|&(_, r)| r).sum::<f64>() / s.len() as f64;
        let before = mean(&self.history[n - 2 * w..n - w]);
        let after = mean(&self.history[n - w..]);
        let (lo, hi) = if before < after {
            (before, after)
        } else {
            (after, before)
        };
        if hi < self.config.min_rate || lo <= 0.0 {
            return None;
        }
        if hi / lo.max(f64::MIN_POSITIVE) >= self.config.ratio {
            let change = PhaseChange {
                cycles,
                before,
                after,
            };
            self.changes.push(change);
            self.cooldown = w;
            Some(change)
        } else {
            None
        }
    }

    /// All boundaries detected so far.
    #[must_use]
    pub fn changes(&self) -> &[PhaseChange] {
        &self.changes
    }

    /// Observations consumed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no observation has been fed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut PhaseDetector, start: u64, rates: &[f64]) -> Vec<PhaseChange> {
        rates
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| d.observe(start + i as u64, r))
            .collect()
    }

    #[test]
    fn stable_series_has_no_phases() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let got = feed(&mut d, 0, &[1.0; 32]);
        assert!(got.is_empty());
    }

    #[test]
    fn step_change_is_detected_once() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let mut rates = vec![1.0; 8];
        rates.extend(vec![4.0; 8]);
        let got = feed(&mut d, 100, &rates);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].is_regression());
        assert!(got[0].after > got[0].before);
    }

    #[test]
    fn drop_is_detected_as_improvement() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let mut rates = vec![4.0; 8];
        rates.extend(vec![1.0; 8]);
        let got = feed(&mut d, 0, &rates);
        assert_eq!(got.len(), 1);
        assert!(!got[0].is_regression());
    }

    #[test]
    fn noise_floor_suppresses_tiny_rates() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let mut rates = vec![0.001; 8];
        rates.extend(vec![0.004; 8]);
        assert!(feed(&mut d, 0, &rates).is_empty());
    }

    #[test]
    fn two_phases_detected_with_cooldown() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let mut rates = vec![1.0; 8];
        rates.extend(vec![4.0; 12]);
        rates.extend(vec![1.0; 12]);
        let got = feed(&mut d, 0, &rates);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].is_regression());
        assert!(!got[1].is_regression());
    }

    #[test]
    fn gradual_drift_within_ratio_is_one_phase() {
        let mut d = PhaseDetector::new(PhaseConfig {
            ratio: 3.0,
            ..PhaseConfig::default()
        });
        let rates: Vec<f64> = (0..32).map(|i| 1.0 + i as f64 * 0.02).collect();
        assert!(feed(&mut d, 0, &rates).is_empty());
    }
}
