//! Warm start: connecting the persistent profile repository
//! (`hpmopt-profile`) to the live monitoring pipeline.
//!
//! The profile crate speaks class/field *names*; the live pipeline
//! speaks `hpmopt-bytecode` ids. This module is the translation layer:
//! it fingerprints the current (program, machine configuration) pair,
//! turns a loaded [`Profile`] into monitor/policy seeds, and turns a
//! finished run's counters and decision log back into a [`Profile`] for
//! persistence. Everything here is a deviation from the paper — the
//! PLDI 2007 system learns from scratch on every invocation — motivated
//! by its own observation that decisions stabilize early and stay valid
//! for the rest of the run.

use std::path::PathBuf;

use hpmopt_bytecode::{ClassId, FieldId, MethodId, Program};
use hpmopt_profile::wire::Fnv1a;
use hpmopt_profile::{DecisionKind, Fingerprint, Profile};
use hpmopt_vm::VmConfig;

use crate::policy::PolicyEvent;

/// How (and whether) a run uses the profile repository.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Profile file to load at startup and save at shutdown; `None`
    /// disables persistence entirely (the paper's behavior).
    pub path: Option<PathBuf>,
    /// Exponential decay applied to prior weights when merging this
    /// run's measurements at shutdown (`weight = old * decay + fresh`).
    pub decay: f64,
    /// Whether to persist the merged profile at shutdown. Disable for
    /// read-only consumers like the report tool's control run.
    pub save: bool,
    /// Workload label baked into the fingerprint.
    pub workload: String,
    /// In-memory prior profile checked out from a shared repository
    /// (the serve daemon's fleet-wide warm start). Takes precedence
    /// over `path` for loading; a checkout whose fingerprint does not
    /// match the run degrades to a cold start exactly like a stale
    /// file. The run's own measurements come back in
    /// [`crate::runtime::RunReport::fresh_profile`] for the caller to
    /// merge, so the repository — not the run — owns the decay-merge.
    pub checkout: Option<Profile>,
    /// Build and report the run's fresh profile even with no `path`
    /// and no `checkout` — a cold first job under a shared repository
    /// still has to hand its measurements back for merging.
    pub report_fresh: bool,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            path: None,
            decay: 0.5,
            save: true,
            workload: String::new(),
            checkout: None,
            report_fresh: false,
        }
    }
}

impl ProfileOptions {
    /// Persist to (and warm-start from) `path`, labeled `workload`.
    #[must_use]
    pub fn at(path: impl Into<PathBuf>, workload: &str) -> Self {
        ProfileOptions {
            path: Some(path.into()),
            workload: workload.to_string(),
            ..ProfileOptions::default()
        }
    }

    /// Warm-start from an in-memory checkout (possibly `None` for a
    /// cold first run) and report the run's fresh profile back without
    /// touching the filesystem — the serve daemon's configuration.
    #[must_use]
    pub fn from_checkout(checkout: Option<Profile>, workload: &str) -> Self {
        ProfileOptions {
            save: false,
            workload: workload.to_string(),
            checkout,
            report_fresh: true,
            ..ProfileOptions::default()
        }
    }
}

/// Fingerprint the (program structure, machine configuration) pair.
///
/// The program hash covers class/field layout and every method body, so
/// any code or layout change invalidates prior profiles; the config
/// hash covers heap sizing/collector and memory-hierarchy geometry, so
/// a profile measured on one simulated machine is not applied to
/// another.
#[must_use]
pub fn fingerprint(program: &Program, vm: &VmConfig, workload: &str) -> Fingerprint {
    let mut h = Fnv1a::new();
    for class in program.classes() {
        h.write_str(class.name());
        for field in class.fields() {
            h.write_str(field.name());
            h.write_str(&format!("{:?}", field.ty()));
            h.write_u64(field.offset());
        }
    }
    for method in program.methods() {
        h.write_str(method.name());
        h.write_u64(u64::from(method.params()));
        h.write_u64(u64::from(method.locals()));
        // Instr derives Debug deterministically; hashing the rendered
        // body avoids a hand-written encoder per opcode.
        h.write_str(&format!("{:?}", method.body()));
    }
    h.write_u64(u64::from(program.entry().0));
    let program_hash = h.finish();

    let mut h = Fnv1a::new();
    h.write_str(&format!("{:?}", vm.heap));
    h.write_str(&format!("{:?}", vm.mem));
    let config_hash = h.finish();

    Fingerprint::new(program_hash, config_hash, workload)
}

/// Monitor/policy seed state derived from a loaded profile, with names
/// resolved back to this program instance's ids.
#[derive(Debug, Clone, Default)]
pub struct Seeds {
    /// Per-field miss counts to seed into the monitor's totals
    /// (rounded decayed weights).
    pub counts: Vec<(FieldId, u64)>,
    /// Co-allocation decisions to install at cycle 0: the hottest field
    /// per class among fields that crossed the decision threshold.
    pub decisions: Vec<(ClassId, FieldId)>,
    /// Methods the prior run's tiered JIT promoted past baseline, to be
    /// folded into the VM's compilation plan so this run opt-compiles
    /// them on first execution instead of re-paying the tier-1 warm-up.
    pub hot_methods: Vec<MethodId>,
}

/// Translate a profile into seeds for this program instance.
///
/// Fields that no longer resolve (the profile outlived a rename) are
/// skipped silently — the fingerprint normally prevents this, but seeds
/// must never fail. Classes whose last logged action was a revert are
/// excluded from decision seeding: the feedback loop already judged
/// that decision harmful.
#[must_use]
pub fn compute_seeds(program: &Program, profile: &Profile, min_field_misses: u64) -> Seeds {
    let reverted = profile.reverted_classes();
    let mut seeds = Seeds::default();
    let mut best: Vec<(ClassId, FieldId, u64)> = Vec::new();
    for fp in &profile.fields {
        let Some(class) = program.class_by_name(&fp.class) else {
            continue;
        };
        let Some(field) = program.field_by_name(class, &fp.field) else {
            continue;
        };
        let weight = fp.weight.round() as u64;
        if weight == 0 {
            continue;
        }
        seeds.counts.push((field, weight));
        if weight < min_field_misses || reverted.contains(&fp.class.as_str()) {
            continue;
        }
        match best.iter_mut().find(|(c, _, _)| *c == class) {
            Some(slot) if weight > slot.2 => *slot = (class, field, weight),
            Some(_) => {}
            None => best.push((class, field, weight)),
        }
    }
    seeds.decisions = best.into_iter().map(|(c, f, _)| (c, f)).collect();
    seeds.hot_methods = profile
        .hot_methods
        .iter()
        .filter_map(|name| program.method_by_name(name))
        .collect();
    seeds
}

/// Build the persistable profile of a finished run from the monitor's
/// per-field totals (with any warm-start seed already subtracted — a
/// profile must record what *this* run measured) and the policy's
/// decision log.
#[must_use]
pub fn build_profile(
    program: &Program,
    fingerprint: Fingerprint,
    field_totals: &[(FieldId, u64)],
    events: &[PolicyEvent],
    hot_methods: &[MethodId],
) -> Profile {
    let mut profile = Profile::new(fingerprint);
    for &m in hot_methods {
        profile.record_hot_method(program.method(m).name());
    }
    for &(field, misses) in field_totals {
        if misses == 0 {
            continue;
        }
        let (class, name) = split_field_name(program, field);
        profile.record_field(&class, &name, misses);
    }
    for event in events {
        match *event {
            PolicyEvent::Enabled {
                cycles,
                class,
                field,
            } => {
                let (c, f) = (class_name(program, class), short_field_name(program, field));
                profile.record_decision(&c, &f, DecisionKind::Enabled, cycles);
            }
            PolicyEvent::WarmStarted {
                cycles,
                class,
                field,
            } => {
                let (c, f) = (class_name(program, class), short_field_name(program, field));
                profile.record_decision(&c, &f, DecisionKind::WarmStarted, cycles);
            }
            PolicyEvent::Pinned { cycles, class, .. } => {
                profile.record_decision(
                    &class_name(program, class),
                    "",
                    DecisionKind::Pinned,
                    cycles,
                );
            }
            PolicyEvent::Reverted { cycles, class } => {
                profile.record_decision(
                    &class_name(program, class),
                    "",
                    DecisionKind::Reverted,
                    cycles,
                );
            }
        }
    }
    profile.seal_run();
    profile
}

fn class_name(program: &Program, class: ClassId) -> String {
    program.class(class).name().to_string()
}

fn short_field_name(program: &Program, field: FieldId) -> String {
    let info = program.field(field);
    program.class(info.class).fields()[info.index]
        .name()
        .to_string()
}

fn split_field_name(program: &Program, field: FieldId) -> (String, String) {
    let info = program.field(field);
    (
        class_name(program, info.class),
        short_field_name(program, field),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("x", FieldType::Ref), ("i", FieldType::Int)]);
        pb.add_class("B", &[("y", FieldType::Ref)]);
        let x = pb.field_id(a, "x").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(a);
        m.store(0);
        m.load(0);
        m.get_field(x);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let p = program();
        let vm = VmConfig::test();
        let a = fingerprint(&p, &vm, "db");
        assert_eq!(a, fingerprint(&p, &vm, "db"), "deterministic");
        assert_ne!(
            a,
            fingerprint(&p, &vm, "jess"),
            "workload label is part of identity"
        );

        let mut other_vm = VmConfig::test();
        other_vm.heap.nursery_bytes *= 2;
        let b = fingerprint(&p, &other_vm, "db");
        assert_eq!(a.program_hash, b.program_hash);
        assert_ne!(a.config_hash, b.config_hash, "heap sizing matters");

        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("A", &[("renamed", FieldType::Ref)]);
        let _ = c;
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let other = pb.finish().unwrap();
        assert_ne!(
            a.program_hash,
            fingerprint(&other, &vm, "db").program_hash,
            "program structure matters"
        );
    }

    #[test]
    fn seeds_resolve_names_and_respect_threshold() {
        let p = program();
        let a = p.class_by_name("A").unwrap();
        let x = p.field_by_name(a, "x").unwrap();
        let b = p.class_by_name("B").unwrap();
        let y = p.field_by_name(b, "y").unwrap();

        let mut prof = Profile::new(Fingerprint::new(1, 2, "t"));
        prof.record_field("A", "x", 100);
        prof.record_field("B", "y", 3); // below threshold
        prof.record_field("Gone", "z", 50); // no longer resolves
        prof.seal_run();

        let seeds = compute_seeds(&p, &prof, 8);
        assert_eq!(seeds.counts, vec![(x, 100), (y, 3)]);
        assert_eq!(seeds.decisions, vec![(a, x)], "only A::x crossed 8");
    }

    #[test]
    fn seeds_skip_reverted_classes() {
        let p = program();
        let mut prof = Profile::new(Fingerprint::new(1, 2, "t"));
        prof.record_field("A", "x", 100);
        prof.record_decision("A", "x", DecisionKind::Enabled, 10);
        prof.record_decision("A", "", DecisionKind::Reverted, 20);
        prof.seal_run();

        let seeds = compute_seeds(&p, &prof, 8);
        assert_eq!(seeds.counts.len(), 1, "history still seeds the monitor");
        assert!(seeds.decisions.is_empty(), "no decision for reverted class");
    }

    #[test]
    fn build_profile_names_fields_and_logs_events() {
        let p = program();
        let a = p.class_by_name("A").unwrap();
        let x = p.field_by_name(a, "x").unwrap();
        let prof = build_profile(
            &p,
            Fingerprint::new(1, 2, "t"),
            &[(x, 42)],
            &[
                PolicyEvent::WarmStarted {
                    cycles: 0,
                    class: a,
                    field: x,
                },
                PolicyEvent::Reverted {
                    cycles: 900,
                    class: a,
                },
            ],
            &[p.entry()],
        );
        assert_eq!(prof.field_weight("A", "x"), 42.0);
        assert_eq!(prof.runs, 1);
        assert_eq!(prof.decisions.len(), 2);
        assert_eq!(prof.decisions[0].kind, DecisionKind::WarmStarted);
        assert_eq!(prof.reverted_classes(), vec!["A"]);
        assert_eq!(prof.hot_methods, vec!["main"]);
    }

    #[test]
    fn hot_method_seeds_resolve_and_skip_unknown_names() {
        let p = program();
        let mut prof = Profile::new(Fingerprint::new(1, 2, "t"));
        prof.record_hot_method("main");
        prof.record_hot_method("renamed_away");
        prof.seal_run();
        let seeds = compute_seeds(&p, &prof, 8);
        assert_eq!(seeds.hot_methods, vec![p.entry()]);
    }
}
