//! Online-optimization infrastructure driven by hardware performance
//! monitoring — the primary contribution of *Schneider, Payer, Gross:
//! "Online Optimizations Driven by Hardware Performance Monitoring"
//! (PLDI 2007)*, reproduced over the substrates in this workspace.
//!
//! The pipeline (paper Sections 4–5):
//!
//! 1. The VM reports every heap access; the PEBS unit in `hpmopt-hpm`
//!    samples every *n*-th cache miss with its exact PC.
//! 2. [`mapping::SampleResolver`] maps a sampled PC through the sorted
//!    method table and the per-method machine-code maps back to a Java^W
//!    bytecode instruction (Section 4.2).
//! 3. [`interest::analyze_method`] walks use-def chains of opt-compiled
//!    methods to find *instructions of interest*: heap accesses whose base
//!    object was itself loaded from a reference field `f`, yielding
//!    `(S, f)` tuples (Section 5.2, Figure 1).
//! 4. [`monitor::OnlineMonitor`] processes sample batches, attributing
//!    misses to reference fields and maintaining per-field counts and
//!    rate histories (Section 5.3).
//! 5. [`policy::AdaptivePolicy`] turns the per-class hottest-field lists
//!    into co-allocation decisions the GenMS collector consults while
//!    tracing the nursery (Section 5.4).
//! 6. [`feedback::Assessor`] watches post-decision miss rates and reverts
//!    decisions that hurt (Section 6.4, Figure 8).
//! 7. [`warmstart`] bridges the persistent profile repository
//!    (`hpmopt-profile`): prior-run miss histograms seed the monitor and
//!    policy at startup so decisions are in force from cycle 0 (a
//!    deviation from the paper, which learns from scratch every run).
//!
//! [`runtime::HpmRuntime`] wires everything to the VM behind one call.
//!
//! # Example
//!
//! ```
//! use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
//! use hpmopt_core::runtime::{HpmRuntime, RunConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut m = MethodBuilder::new("main", 0, 1, false);
//! m.const_i(64);
//! m.new_array(hpmopt_bytecode::ElemKind::I64);
//! m.store(0);
//! m.ret();
//! let id = pb.add_method(m);
//! pb.set_entry(id);
//! let program = pb.finish()?;
//!
//! let report = HpmRuntime::new(RunConfig::default()).run(&program).unwrap();
//! assert!(report.cycles > 0);
//! # Ok::<(), hpmopt_bytecode::VerifyError>(())
//! ```

pub mod feedback;
pub mod interest;
pub mod mapping;
pub mod monitor;
pub mod phases;
pub mod policy;
pub mod runtime;
pub mod warmstart;

pub use interest::InterestMap;
pub use mapping::SampleResolver;
pub use monitor::OnlineMonitor;
pub use phases::{PhaseChange, PhaseDetector};
pub use policy::AdaptivePolicy;
pub use runtime::{HpmRuntime, RunConfig, RunReport};
pub use warmstart::ProfileOptions;
