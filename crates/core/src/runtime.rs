//! The composed runtime: VM + HPM + monitor + policy + feedback.
//!
//! [`HpmRuntime`] is the top of the stack: it executes a program on the
//! `hpmopt-vm` engine while implementing the VM's
//! [`RuntimeHooks`] with the full monitoring pipeline —
//! PEBS sampling on every heap access, collector-thread polling on the
//! simulated clock, batch attribution of samples to reference fields,
//! miss-driven co-allocation decisions for the collector, and
//! feedback-based reverting of decisions that hurt.

use std::collections::BTreeMap;

use hpmopt_bytecode::{ClassId, FieldId, MethodId, Program};
use hpmopt_gc::policy::{CoallocDecision, CoallocPolicy, NoCoalloc};
use hpmopt_gc::GcStats;
use hpmopt_hpm::{HpmConfig, HpmStats, HpmSystem};
use hpmopt_profile::{ColdReason, LoadOutcome, Profile, ProfileStore};
use hpmopt_telemetry::{
    CycleBuckets, DecisionRecord, FeedbackChain, HistogramId, MetricId, Telemetry, TraceKind,
};
use hpmopt_vm::machine::{CompiledCode, Tier};
use hpmopt_vm::{
    AccessContext, CodeRetired, CompilationPlan, NoHooks, RunSummary, RuntimeHooks, Vm, VmConfig,
    VmError,
};

use crate::feedback::{Assessor, FeedbackConfig, Verdict};
use crate::monitor::{AttributionStats, MonitorConfig, OnlineMonitor, SeriesPoint};
use crate::phases::{PhaseConfig, PhaseDetector};
use crate::policy::{AdaptivePolicy, PolicyConfig, PolicyEvent};
use crate::warmstart::{self, ProfileOptions, Seeds};

/// The Figure 8 experiment: pin a deliberately bad placement (padding
/// between parent and child) at a given time and let the feedback loop
/// discover and revert it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForcedBadPlacement {
    /// Class whose decision is overridden.
    pub class: String,
    /// Reference field to (mis)co-allocate through.
    pub field: String,
    /// Padding between parent and child (one cache line in the paper).
    pub gap_bytes: u64,
    /// Cycle time at which the bad decision is installed.
    pub at_cycles: u64,
}

/// Full configuration of a monitored run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// VM configuration (heap, collector, memory, tiered JIT, plan,
    /// maps).
    pub vm: VmConfig,
    /// Monitoring configuration (event, sampling interval, buffers).
    pub hpm: HpmConfig,
    /// Monitor cost model and series recording.
    pub monitor: MonitorConfig,
    /// Whether miss-driven co-allocation is active.
    pub coalloc: bool,
    /// Decision thresholds.
    pub policy: PolicyConfig,
    /// Revert heuristic.
    pub feedback: FeedbackConfig,
    /// Also assess (and potentially revert) adaptive decisions, not just
    /// pinned ones.
    pub assess_adaptive: bool,
    /// `(class, field)` pairs whose miss series to record (Figure 7).
    pub watch_fields: Vec<(String, String)>,
    /// Optional Figure 8 forced bad placement.
    pub forced_bad: Option<ForcedBadPlacement>,
    /// Persistent-profile repository settings (warm start + shutdown
    /// save). Disabled by default: the paper's system has no
    /// persistence.
    pub profile: ProfileOptions,
    /// Telemetry sink shared by every pipeline layer. Disabled by
    /// default, in which case all recording is a no-op.
    pub telemetry: Telemetry,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vm: VmConfig::default(),
            hpm: HpmConfig::default(),
            monitor: MonitorConfig::default(),
            coalloc: true,
            policy: PolicyConfig::default(),
            feedback: FeedbackConfig::default(),
            assess_adaptive: false,
            watch_fields: Vec::new(),
            forced_bad: None,
            profile: ProfileOptions::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Everything a monitored run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// VM-level summary (cycles, memory stats, GC stats, code sizes).
    pub vm: RunSummary,
    /// Monitoring statistics (events, samples, overhead cycles).
    pub hpm: HpmStats,
    /// Where samples went during attribution.
    pub attribution: AttributionStats,
    /// Per-field sampled-miss totals, hottest first, with resolved names.
    pub field_totals: Vec<(String, u64)>,
    /// The policy's decision log.
    pub policy_events: Vec<PolicyEvent>,
    /// Final co-allocation decisions as `(class, field)` names.
    pub decisions: Vec<(String, String)>,
    /// Per-watched-field cumulative miss series.
    pub series: Vec<(String, Vec<SeriesPoint>)>,
    /// Per-poll `(cycles, cumulative selected events)` — the global miss
    /// curve of Figure 7(b).
    pub event_series: Vec<(u64, u64)>,
    /// The sampling interval in force at the end (after auto adaptation).
    pub final_interval: u64,
    /// Whether a persisted profile warm-started this run.
    pub warm_start: bool,
    /// What *this* run measured (warm-start seeds subtracted), built
    /// whenever profile persistence or a shared-repository checkout is
    /// configured. A shared repository decay-merges this back on job
    /// completion; `None` when the run used no profile machinery.
    pub fresh_profile: Option<Profile>,
    /// Placement-independent digest of the program-visible end state
    /// (statics plus reachable heap contents,
    /// [`hpmopt_vm::Vm::state_digest`]). The stress engine's
    /// zero-perturbation oracle compares this between monitored and
    /// unmonitored runs.
    pub result_digest: u64,
}

impl RunReport {
    /// Collector statistics shortcut.
    #[must_use]
    pub fn gc(&self) -> &GcStats {
        &self.vm.gc
    }

    /// Simulated cycles until the first co-allocation decision was in
    /// force (enabled, warm-started, or pinned) — the "cycles to first
    /// optimization" metric. `None` when the run never decided.
    #[must_use]
    pub fn cycles_to_first_decision(&self) -> Option<u64> {
        self.policy_events
            .iter()
            .filter_map(|e| match *e {
                PolicyEvent::Enabled { cycles, .. }
                | PolicyEvent::WarmStarted { cycles, .. }
                | PolicyEvent::Pinned { cycles, .. } => Some(cycles),
                PolicyEvent::Reverted { .. } => None,
            })
            .min()
    }

    /// Number of reverts the feedback loop performed.
    #[must_use]
    pub fn revert_count(&self) -> usize {
        self.policy_events
            .iter()
            .filter(|e| matches!(e, PolicyEvent::Reverted { .. }))
            .count()
    }

    /// Split the run's total cycles into exclusive buckets: mutator,
    /// GC, sampling microcode, poll/drain, and recompilation.
    #[must_use]
    pub fn cycle_buckets(&self) -> CycleBuckets {
        CycleBuckets::from_run(
            self.cycles,
            self.vm.gc_cycles,
            self.hpm.sampling_cycles,
            self.vm.monitor_cycles,
            self.vm.compile_cycles,
        )
    }
}

/// The composed runtime.
#[derive(Debug, Clone)]
pub struct HpmRuntime {
    config: RunConfig,
}

impl HpmRuntime {
    /// Create a runtime with `config`.
    #[must_use]
    pub fn new(config: RunConfig) -> Self {
        HpmRuntime { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Execute `program` under monitoring.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised by the program.
    pub fn run(&self, program: &Program) -> Result<RunReport, VmError> {
        let mut monitor = OnlineMonitor::new(self.config.monitor);
        let mut watched = Vec::new();
        for (class_name, field_name) in &self.config.watch_fields {
            if let Some(f) = program
                .class_by_name(class_name)
                .and_then(|c| program.field_by_name(c, field_name))
            {
                monitor.watch(f);
                watched.push(f);
            }
        }
        let forced = self.config.forced_bad.as_ref().and_then(|fb| {
            let class = program.class_by_name(&fb.class)?;
            let field = program.field_by_name(class, &fb.field)?;
            Some(PendingPin {
                class,
                decision: CoallocDecision {
                    field_offset: program.field(field).offset,
                    gap_bytes: fb.gap_bytes,
                },
                at_cycles: fb.at_cycles,
                applied: false,
            })
        });

        let telemetry = self.config.telemetry.clone();
        monitor.set_telemetry(telemetry.clone());
        let mut hpm = HpmSystem::new(self.config.hpm);
        hpm.set_telemetry(telemetry.clone());

        // Warm start: consult the profile repository before the first
        // bytecode runs. A load can only ever degrade to a cold start —
        // a broken profile file (or a stale in-memory checkout) must
        // not break the run.
        let wants_profile = self.config.profile.path.is_some()
            || self.config.profile.checkout.is_some()
            || self.config.profile.report_fresh;
        let fingerprint = wants_profile.then(|| {
            warmstart::fingerprint(program, &self.config.vm, &self.config.profile.workload)
        });
        let store = self.config.profile.path.as_ref().map(ProfileStore::new);
        let mut prior: Option<Profile> = None;
        let mut seeds: Option<Seeds> = None;
        if let Some(fp) = &fingerprint {
            // An in-memory checkout (shared-repository mode) takes
            // precedence over the disk store.
            let outcome = match self.config.profile.checkout.clone() {
                Some(p) if p.fingerprint == *fp => LoadOutcome::Warm(p),
                Some(_) => LoadOutcome::Cold(ColdReason::FingerprintMismatch),
                None => match &store {
                    Some(s) => s.load(fp),
                    None => LoadOutcome::Cold(ColdReason::Missing),
                },
            };
            match outcome {
                LoadOutcome::Warm(p) => {
                    telemetry.incr(MetricId::ProfileWarmStarts);
                    seeds = Some(warmstart::compute_seeds(
                        program,
                        &p,
                        self.config.policy.min_field_misses,
                    ));
                    prior = Some(p);
                }
                LoadOutcome::Cold(reason) => {
                    telemetry.incr(MetricId::ProfileColdStarts);
                    telemetry.incr(match reason {
                        ColdReason::Missing => MetricId::ProfileLoadMissing,
                        ColdReason::Io(_) | ColdReason::Format(_) => MetricId::ProfileLoadCorrupt,
                        ColdReason::FingerprintMismatch => MetricId::ProfileLoadMismatch,
                    });
                }
            }
        }
        let warm_start = prior.is_some();

        let mut hooks = Hooks {
            hpm,
            monitor,
            policy: AdaptivePolicy::new(self.config.policy),
            assessor: Assessor::new(self.config.feedback),
            coalloc: self.config.coalloc,
            assess_adaptive: self.config.assess_adaptive,
            forced,
            seeds,
            seeded: Vec::new(),
            pinned: Vec::new(),
            rate_history: BTreeMap::new(),
            event_series: Vec::new(),
            last_period_cycles: 0,
            telemetry: telemetry.clone(),
            phases: PhaseDetector::new(PhaseConfig::default()),
            policy_events_emitted: 0,
            gc_seen: GcStats::default(),
            last_cycles: 0,
            baseline_cc: self.config.vm.baseline_compile_cycles_per_bc,
            opt_cc: self.config.vm.opt_compile_cycles_per_bc,
            last_poll_cycles: None,
            revert_ctx: BTreeMap::new(),
            samples_scratch: Vec::with_capacity(self.config.hpm.buffer_capacity),
        };

        // Warm-start the tier decisions too: hot methods from the prior
        // run's profile fold into the compilation plan, so they enter at
        // opt tier on first execution instead of re-paying the tier-1
        // timer warm-up. Must happen before the VM is built — the plan
        // is consulted at first invocation.
        let mut vm_config = self.config.vm.clone();
        if let Some(s) = &hooks.seeds {
            if !s.hot_methods.is_empty() {
                let mut methods: Vec<MethodId> = vm_config
                    .plan
                    .as_ref()
                    .map(|p| p.methods().to_vec())
                    .unwrap_or_default();
                methods.extend_from_slice(&s.hot_methods);
                vm_config.plan = Some(CompilationPlan::new(methods));
            }
        }
        telemetry.set_gauge(
            MetricId::JitCacheCapacityBytes,
            vm_config.jit.code_cache_capacity_bytes.unwrap_or(0),
        );

        let mut vm = Vm::new(program, vm_config);
        let summary = vm.run(&mut hooks)?;
        let result_digest = vm.state_digest();
        sync_final_counters(&hooks, &summary);

        // Shutdown: build what *this* run measured (seeded history
        // subtracted). In disk mode it is decay-merged into the prior
        // profile and saved; in shared-repository mode the fresh
        // profile rides back on the report and the repository merges.
        let mut fresh_profile: Option<Profile> = None;
        if let Some(fp) = fingerprint {
            let mut totals = hooks.monitor.field_totals();
            for (f, n) in &mut totals {
                if let Some(&(_, s)) = hooks.seeded.iter().find(|(sf, _)| sf == f) {
                    *n = n.saturating_sub(s);
                }
            }
            let fresh = warmstart::build_profile(
                program,
                fp,
                &totals,
                hooks.policy.events(),
                &summary.opt_compiled,
            );
            if self.config.profile.save {
                if let Some(store) = &store {
                    let merged = match prior {
                        Some(mut p) => {
                            p.merge_run(&fresh, self.config.profile.decay);
                            p
                        }
                        None => fresh.clone(),
                    };
                    match store.save(&merged) {
                        Ok(_) => {
                            telemetry.incr(MetricId::ProfileSaves);
                            telemetry.set_gauge(MetricId::ProfileRuns, u64::from(merged.runs));
                        }
                        Err(_) => telemetry.incr(MetricId::ProfileSaveErrors),
                    }
                }
            }
            fresh_profile = Some(fresh);
        }

        let field_totals = hooks
            .monitor
            .field_totals()
            .into_iter()
            .map(|(f, n)| (program.field_name(f), n))
            .collect();
        let decisions = hooks
            .policy
            .decisions()
            .into_iter()
            .map(|(c, f)| (program.class(c).name().to_string(), program.field_name(f)))
            .collect();
        let series = watched
            .iter()
            .map(|&f| (program.field_name(f), hooks.monitor.series(f).to_vec()))
            .collect();

        Ok(RunReport {
            cycles: summary.cycles,
            hpm: hooks.hpm.stats(),
            attribution: hooks.monitor.attribution(),
            field_totals,
            policy_events: hooks.policy.events().to_vec(),
            decisions,
            series,
            event_series: hooks.event_series,
            final_interval: hooks.hpm.current_interval(),
            warm_start,
            fresh_profile,
            result_digest,
            vm: summary,
        })
    }

    /// Produce a pseudo-adaptive compilation plan by running the program
    /// once with the timer-driven AOS and recording which methods it
    /// opt-compiled (the paper's "pre-generated compilation plan").
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the profiling run.
    pub fn generate_plan(program: &Program, mut vm: VmConfig) -> Result<CompilationPlan, VmError> {
        vm.plan = None;
        vm.jit.tier1_enabled = true;
        let summary = Vm::new(program, vm).run(&mut NoHooks)?;
        Ok(CompilationPlan::new(summary.opt_compiled))
    }
}

/// Push the run's final aggregate statistics into the telemetry
/// registry. The `memsim.*` and residual `gc.*`/`vm.*` numbers are
/// kept by their subsystems (which stay telemetry-free) and exported
/// here in one go, so the snapshot taken after a run is exact.
fn sync_final_counters(hooks: &Hooks, summary: &RunSummary) {
    let t = &hooks.telemetry;
    let mem = &summary.mem;
    t.add(MetricId::MemsimL1Hits, mem.l1_hits);
    t.add(MetricId::MemsimL1Misses, mem.l1_misses);
    t.add(MetricId::MemsimL1Evictions, mem.l1_evictions);
    t.add(MetricId::MemsimL2Hits, mem.l2_hits);
    t.add(MetricId::MemsimL2Misses, mem.l2_misses);
    t.add(MetricId::MemsimL2Evictions, mem.l2_evictions);
    t.add(MetricId::MemsimDtlbHits, mem.dtlb_hits);
    t.add(MetricId::MemsimDtlbMisses, mem.dtlb_misses);
    t.add(MetricId::MemsimDtlbEvictions, mem.dtlb_evictions);

    // GC counters were advanced per collection in `on_gc`; cover any
    // allocation/promotion tail after the last collection callback.
    let gc = &summary.gc;
    let seen = &hooks.gc_seen;
    t.add(
        MetricId::GcMinorCollections,
        gc.minor_collections - seen.minor_collections,
    );
    t.add(
        MetricId::GcMajorCollections,
        gc.major_collections - seen.major_collections,
    );
    t.add(
        MetricId::GcPromotedBytes,
        gc.bytes_promoted - seen.bytes_promoted,
    );
    t.add(
        MetricId::GcCoallocatedBytes,
        gc.bytes_coallocated - seen.bytes_coallocated,
    );

    t.set_gauge(MetricId::VmCompileCycles, summary.compile_cycles);
}

/// Static tier label for trace payloads.
fn tier_name(tier: Tier) -> &'static str {
    match tier {
        Tier::Baseline => "baseline",
        Tier::Opt => "opt",
        Tier::Region => "region",
    }
}

#[derive(Debug, Clone)]
struct PendingPin {
    class: ClassId,
    decision: CoallocDecision,
    at_cycles: u64,
    applied: bool,
}

#[derive(Debug, Clone)]
struct Hooks {
    hpm: HpmSystem,
    monitor: OnlineMonitor,
    policy: AdaptivePolicy,
    assessor: Assessor,
    coalloc: bool,
    assess_adaptive: bool,
    forced: Option<PendingPin>,
    /// Warm-start seed state, consumed by `on_startup`.
    seeds: Option<Seeds>,
    /// Counts actually seeded into the monitor, so the shutdown save
    /// can subtract history from the totals.
    seeded: Vec<(FieldId, u64)>,
    /// Classes whose active decision is a pin (revert = unpin).
    pinned: Vec<ClassId>,
    /// Recent per-class miss rates (misses per megacycle per period).
    rate_history: BTreeMap<ClassId, Vec<f64>>,
    event_series: Vec<(u64, u64)>,
    last_period_cycles: u64,
    telemetry: Telemetry,
    /// Global sampled-miss-rate change-point detector, fed per poll;
    /// boundaries become `phase_change` trace events.
    phases: PhaseDetector,
    /// Policy-log entries already exported as trace events.
    policy_events_emitted: usize,
    /// GC stats as of the previous `on_gc`, for per-collection deltas.
    gc_seen: GcStats,
    /// Most recent cycle stamp observed (for callbacks without a clock).
    last_cycles: u64,
    /// Per-bytecode compile costs from the VM config, mirroring what
    /// `Vm::install` charges (for the compile-cost histogram).
    baseline_cc: u64,
    opt_cc: u64,
    /// Cycle stamp of the previous poll (poll-gap histogram).
    last_poll_cycles: Option<u64>,
    /// Feedback evidence captured when a revert verdict fires, consumed
    /// when the matching `Reverted` policy event is exported into the
    /// provenance trail.
    revert_ctx: BTreeMap<ClassId, FeedbackChain>,
    /// Reusable poll-drain buffer: cleared and refilled by
    /// `HpmSystem::poll_into` each poll, so the per-poll hot path never
    /// allocates.
    samples_scratch: Vec<hpmopt_hpm::Sample>,
}

impl Hooks {
    fn baseline_rate(&self, class: ClassId) -> f64 {
        let h = self.rate_history.get(&class).map_or(&[][..], Vec::as_slice);
        let tail = &h[h.len().saturating_sub(5)..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

impl RuntimeHooks for Hooks {
    fn on_startup(&mut self, program: &Program, cycles: u64) {
        let Some(seeds) = self.seeds.take() else {
            return;
        };
        for &(field, misses) in &seeds.counts {
            self.monitor.seed_total(field, misses);
        }
        // Decisions only matter when co-allocation is active; a control
        // run still seeds the monitor so its counters are comparable.
        let installed = if self.coalloc {
            for &(class, field) in &seeds.decisions {
                self.policy.warm_start(program, class, field, cycles);
            }
            seeds.decisions.len() as u64
        } else {
            0
        };
        self.telemetry
            .add(MetricId::ProfileSeededFields, seeds.counts.len() as u64);
        self.telemetry
            .add(MetricId::ProfileSeededDecisions, installed);
        self.telemetry.record(
            cycles,
            TraceKind::WarmStart {
                seeded_fields: seeds.counts.len() as u64,
                seeded_decisions: installed,
            },
        );
        self.seeded = seeds.counts;
    }

    fn on_access(&mut self, ctx: &AccessContext) -> u64 {
        self.last_cycles = ctx.cycles;
        self.hpm
            .on_event(ctx.pc, ctx.addr.0, &ctx.outcome, ctx.cycles)
    }

    fn on_compile(&mut self, program: &Program, code: &CompiledCode) {
        self.monitor.register_artifact(program, code);
        let (tier, per_bc) = match code.tier {
            Tier::Baseline => {
                self.telemetry.incr(MetricId::VmCompilesBaseline);
                self.telemetry.incr(MetricId::JitCompilesBaseline);
                ("baseline", self.baseline_cc)
            }
            Tier::Opt => {
                self.telemetry.incr(MetricId::VmCompilesOpt);
                self.telemetry.incr(MetricId::JitCompilesOpt);
                ("opt", self.opt_cc)
            }
            Tier::Region => {
                self.telemetry.incr(MetricId::JitCompilesRegion);
                ("region", self.opt_cc)
            }
        };
        // Mirror of what `Vm::install` charges for this compilation.
        let cost = per_bc * program.method(code.method).len() as u64;
        self.telemetry
            .observe(HistogramId::VmCompileCostCycles, cost);
        self.telemetry
            .observe(HistogramId::JitCompileCostCycles, cost);
        self.telemetry
            .set_gauge_max(MetricId::JitCodeEpoch, code.install_epoch);
        self.telemetry.record(
            self.last_cycles,
            TraceKind::Recompilation {
                method: code.method.0,
                tier,
            },
        );
    }

    fn on_code_retired(&mut self, ev: &CodeRetired, cycles: u64) {
        self.last_cycles = cycles;
        // Stamp subsequent samples with the new epoch and close the
        // retired artifact's resolution window — the two halves of the
        // attribution-across-code-churn contract.
        self.hpm.set_code_epoch(ev.epoch);
        self.monitor.retire_artifact(ev.code_start, ev.epoch);
        self.telemetry.incr(MetricId::JitCodeFrees);
        if ev.evicted {
            self.telemetry.incr(MetricId::JitEvictions);
        }
        self.telemetry
            .set_gauge(MetricId::JitCacheBytes, ev.cache_bytes);
        self.telemetry
            .set_gauge_max(MetricId::JitCodeEpoch, ev.epoch);
        self.telemetry.record(
            cycles,
            TraceKind::CodeEviction {
                method: ev.method.0,
                tier: tier_name(ev.tier),
                epoch: ev.epoch,
                evicted: ev.evicted,
            },
        );
    }

    fn on_deopt(&mut self, method: MethodId, _from_tier: Tier, cycles: u64) {
        self.last_cycles = cycles;
        self.telemetry.incr(MetricId::JitDeopts);
        self.telemetry
            .record(cycles, TraceKind::Deopt { method: method.0 });
    }

    fn on_gc(&mut self, stats: &GcStats, cycles: u64) {
        self.last_cycles = cycles;
        let minor = stats.minor_collections - self.gc_seen.minor_collections;
        let major = stats.major_collections - self.gc_seen.major_collections;
        self.telemetry.add(MetricId::GcMinorCollections, minor);
        self.telemetry.add(MetricId::GcMajorCollections, major);
        self.telemetry.add(
            MetricId::GcPromotedBytes,
            stats.bytes_promoted - self.gc_seen.bytes_promoted,
        );
        self.telemetry.add(
            MetricId::GcCoallocatedBytes,
            stats.bytes_coallocated - self.gc_seen.bytes_coallocated,
        );
        // Pause duration of the collection(s) this callback covers.
        let pause = stats.gc_cycles - self.gc_seen.gc_cycles;
        self.telemetry.observe(
            if major > 0 {
                HistogramId::GcMajorPauseCycles
            } else {
                HistogramId::GcMinorPauseCycles
            },
            pause,
        );
        self.telemetry.record(
            cycles,
            TraceKind::GcCollection {
                major: major > 0,
                promoted_bytes: stats.bytes_promoted - self.gc_seen.bytes_promoted,
            },
        );
        self.gc_seen = *stats;
    }

    fn on_poll(&mut self, program: &Program, cycles: u64) -> u64 {
        if !self.hpm.poll_due(cycles) {
            return 0;
        }
        self.run_poll(program, cycles)
    }

    fn on_exit(&mut self, program: &Program, cycles: u64) -> u64 {
        if !self.hpm.enabled() {
            return 0;
        }
        self.run_poll(program, cycles)
    }

    fn coalloc_policy(&self) -> &dyn CoallocPolicy {
        if self.coalloc || self.forced.as_ref().is_some_and(|p| p.applied) {
            &self.policy
        } else {
            &NoCoalloc
        }
    }
}

impl Hooks {
    fn run_poll(&mut self, program: &Program, cycles: u64) -> u64 {
        self.last_cycles = cycles;
        // Interpreter cycles between collector-thread polls. The span
        // reads the simulated clock; it never advances it.
        if let Some(last) = self.last_poll_cycles {
            self.telemetry
                .span_at(HistogramId::CorePollGapCycles, last)
                .end(cycles);
        }
        self.last_poll_cycles = Some(cycles);
        let attributed_before = self.monitor.attribution().attributed;
        self.samples_scratch.clear();
        let mut cost = self.hpm.poll_into(cycles, &mut self.samples_scratch);
        cost += self.monitor.process_batch(&self.samples_scratch, cycles);
        self.telemetry.record(
            cycles,
            TraceKind::PollCompleted {
                samples: self.samples_scratch.len() as u64,
                attributed: self.monitor.attribution().attributed - attributed_before,
            },
        );

        // Period bookkeeping: per-class sampled misses and rates.
        let window = self.monitor.take_window();
        let dt = cycles.saturating_sub(self.last_period_cycles).max(1);
        self.last_period_cycles = cycles;
        let mut class_misses: BTreeMap<ClassId, u64> = BTreeMap::new();
        for (f, n) in &window {
            *class_misses.entry(program.field(*f).class).or_default() += n;
        }
        for (&class, &n) in &class_misses {
            let rate = n as f64 * 1_000_000.0 / dt as f64;
            let h = self.rate_history.entry(class).or_default();
            h.push(rate);
            if h.len() > 32 {
                h.remove(0);
            }
        }

        // Figure 8: install the forced bad placement when its time comes.
        if let Some(pin) = &mut self.forced {
            if !pin.applied && cycles >= pin.at_cycles {
                pin.applied = true;
                let class = pin.class;
                let decision = pin.decision;
                let baseline = self.baseline_rate(class);
                self.policy.pin(class, decision, cycles);
                self.assessor.start_tracking(class, baseline);
                self.pinned.push(class);
            }
        }

        // Assess tracked classes; revert sustained regressions.
        for class in self.policy.active_classes() {
            if !self.assessor.is_tracking(class) {
                continue;
            }
            let n = class_misses.get(&class).copied().unwrap_or(0);
            let rate = n as f64 * 1_000_000.0 / dt as f64;
            // Capture the evidence before `observe` mutates (and on a
            // revert, drops) the track.
            let baseline = self.assessor.baseline(class).unwrap_or(0.0);
            let streak = self.assessor.streak(class).unwrap_or(0);
            if self.assessor.observe(class, n, rate) == Verdict::Revert {
                self.revert_ctx.insert(
                    class,
                    FeedbackChain {
                        baseline_rate: baseline,
                        observed_rate: rate,
                        tolerance: self.assessor.config().tolerance,
                        regressing_periods: streak as u64 + 1,
                    },
                );
                if self.pinned.contains(&class) {
                    self.policy.unpin(class, cycles);
                    self.pinned.retain(|&c| c != class);
                } else {
                    self.policy.revert(class, cycles);
                }
            }
        }

        // Refresh adaptive decisions from the updated counters.
        if self.coalloc {
            let before: Vec<ClassId> = self.policy.active_classes();
            self.policy.refresh(program, &self.monitor, cycles);
            if self.assess_adaptive {
                for class in self.policy.active_classes() {
                    if !before.contains(&class) && !self.assessor.is_tracking(class) {
                        let baseline = self.baseline_rate(class);
                        self.assessor.start_tracking(class, baseline);
                    }
                }
            }
        }

        // Export new policy decisions as trace events, counters, and
        // provenance records carrying the full causal chain.
        let threshold = self.policy.config().min_field_misses;
        let events = self.policy.events();
        for event in &events[self.policy_events_emitted..] {
            let (kind, metric, action, field, gap_bytes) = match *event {
                PolicyEvent::Enabled { class, field, .. } => (
                    TraceKind::CoallocDecision {
                        class: class.0,
                        field: field.0,
                        action: "enabled",
                    },
                    MetricId::CorePolicyEnabled,
                    "enabled",
                    Some(field),
                    0,
                ),
                PolicyEvent::Pinned {
                    class, gap_bytes, ..
                } => (
                    TraceKind::CoallocDecision {
                        class: class.0,
                        field: u32::MAX,
                        action: "pinned",
                    },
                    MetricId::CorePolicyPinned,
                    "pinned",
                    None,
                    gap_bytes,
                ),
                PolicyEvent::Reverted { class, .. } => (
                    TraceKind::CoallocDecision {
                        class: class.0,
                        field: u32::MAX,
                        action: "reverted",
                    },
                    MetricId::CorePolicyReverted,
                    "reverted",
                    None,
                    0,
                ),
                PolicyEvent::WarmStarted { class, field, .. } => (
                    TraceKind::CoallocDecision {
                        class: class.0,
                        field: field.0,
                        action: "warm_start",
                    },
                    MetricId::CorePolicyWarmStarted,
                    "warm_start",
                    Some(field),
                    0,
                ),
            };
            let (at, class) = match *event {
                PolicyEvent::Enabled { cycles, class, .. }
                | PolicyEvent::Pinned { cycles, class, .. }
                | PolicyEvent::Reverted { cycles, class, .. }
                | PolicyEvent::WarmStarted { cycles, class, .. } => (cycles, class),
            };
            self.telemetry.record(at, kind);
            self.telemetry.incr(metric);
            // Sample-to-decision latency: first witnessed sample on the
            // decision's field to the policy action.
            if action == "enabled" {
                if let Some(first) = field.and_then(|f| self.telemetry.first_witness_cycle(f.0)) {
                    self.telemetry
                        .span_at(HistogramId::CoreDecisionLatencyCycles, first)
                        .end(at);
                }
            }
            let feedback = if action == "reverted" {
                self.revert_ctx.remove(&class)
            } else {
                None
            };
            self.telemetry.record_decision(DecisionRecord {
                cycle: at,
                class: class.0,
                field: field.map_or(u32::MAX, |f| f.0),
                action,
                field_misses: field.map_or(0, |f| self.monitor.total(f)),
                threshold,
                gap_bytes,
                witnesses: Vec::new(),
                feedback,
            });
        }
        self.policy_events_emitted = events.len();

        // Feed the phase detector with the global sampled-miss rate
        // (misses per megacycle over this decision period).
        let total_misses: u64 = class_misses.values().sum();
        let global_rate = total_misses as f64 * 1_000_000.0 / dt as f64;
        if let Some(change) = self.phases.observe(cycles, global_rate) {
            self.telemetry.incr(MetricId::CorePhaseChanges);
            self.telemetry.record(
                cycles,
                TraceKind::PhaseChange {
                    miss_rate_ppm: change.after.round() as u64,
                },
            );
        }

        self.event_series.push((cycles, self.hpm.stats().events));
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::{ElemKind, FieldType};
    use hpmopt_gc::{CollectorKind, HeapConfig};
    use hpmopt_hpm::SamplingInterval;

    /// A miniature `db`: many String-like parents, each holding a char[]
    /// child, traversed by pointer chasing through the parent field —
    /// enough resident data to overflow the L1 and produce misses on the
    /// child dereference.
    fn mini_db() -> Program {
        let mut pb = ProgramBuilder::new();
        let string = pb.add_class("String", &[("value", FieldType::Ref)]);
        let value = pb.field_id(string, "value").unwrap();
        let table = pb.add_static("table", FieldType::Ref);
        let sum = pb.add_static("sum", FieldType::Int);
        let n = 2000i64; // 2000 pairs ≈ 96 KB resident, well over the 16 KB L1

        let mut m = MethodBuilder::new("main", 0, 4, false);
        // Rounds interleave building a fresh table (allocation → GC →
        // promotion, where co-allocation acts) with pointer-chasing reads
        // (where the misses accrue). Later rounds benefit from decisions
        // made on earlier rounds' samples.
        m.for_loop(
            3,
            |m| {
                m.const_i(10);
            },
            |m| {
                // table = new String[n]; fill with fresh pairs.
                m.const_i(n);
                m.new_array(ElemKind::Ref);
                m.put_static(table);
                m.for_loop(
                    0,
                    |m| {
                        m.const_i(n);
                    },
                    |m| {
                        m.new_object(string);
                        m.store(1);
                        m.load(1);
                        m.const_i(4);
                        m.new_array(ElemKind::I16);
                        m.put_field(value);
                        m.get_static(table);
                        m.load(0);
                        m.load(1);
                        m.array_set(ElemKind::Ref);
                    },
                );
                // Stride through the table reading s.value[0].
                m.for_loop(
                    2,
                    |m| {
                        m.const_i(15);
                    },
                    |m| {
                        m.for_loop(
                            0,
                            |m| {
                                m.const_i(n);
                            },
                            |m| {
                                m.get_static(table);
                                m.load(0);
                                m.array_get(ElemKind::Ref);
                                m.store(1);
                                m.get_static(sum);
                                m.load(1);
                                m.get_field(value);
                                m.const_i(0);
                                m.array_get(ElemKind::I16);
                                m.add();
                                m.put_static(sum);
                            },
                        );
                    },
                );
            },
        );
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    fn config(coalloc: bool) -> RunConfig {
        let mut vm = VmConfig::test();
        vm.step_limit = None;
        vm.heap = HeapConfig {
            heap_bytes: 4 * 1024 * 1024,
            nursery_bytes: 64 * 1024,
            los_bytes: 8 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        };
        RunConfig {
            vm,
            hpm: HpmConfig {
                interval: SamplingInterval::Fixed(512),
                // A small kernel buffer makes the overflow interrupt (not
                // the 10 ms timer) drive polling, so short test runs still
                // see many decision periods.
                buffer_capacity: 32,
                ..HpmConfig::default()
            },
            coalloc,
            ..RunConfig::default()
        }
    }

    #[test]
    fn end_to_end_pipeline_attributes_and_coallocates() {
        let p = mini_db();
        // Pseudo-adaptive plan: opt-compile main so the interest analysis
        // runs (monitoring ignores baseline code).
        let plan = HpmRuntime::generate_plan(&p, config(true).vm).unwrap();
        let mut cfg = config(true);
        cfg.vm.plan = Some(CompilationPlan::new(vec![p.entry()]));
        cfg.vm.jit.tier1_enabled = false;
        let _ = plan;

        let report = HpmRuntime::new(cfg).run(&p).unwrap();
        assert!(report.hpm.events > 0, "L1 misses observed");
        assert!(report.hpm.samples > 0, "some were sampled");
        assert!(
            report.attribution.attributed > 0,
            "samples attributed to fields: {:?}",
            report.attribution
        );
        assert!(
            report
                .field_totals
                .first()
                .is_some_and(|(name, _)| name == "String::value"),
            "String::value must be the hottest field: {:?}",
            report.field_totals
        );
        assert!(
            !report.decisions.is_empty(),
            "a co-allocation decision was made"
        );
        assert!(
            report.vm.gc.objects_coallocated > 0,
            "the collector applied it: {:?}",
            report.vm.gc
        );
    }

    #[test]
    fn coallocation_reduces_l1_misses_on_mini_db() {
        let p = mini_db();
        let mut on = config(true);
        on.vm.plan = Some(CompilationPlan::new(vec![p.entry()]));
        on.vm.jit.tier1_enabled = false;
        let mut off = config(false);
        off.vm.plan = Some(CompilationPlan::new(vec![p.entry()]));
        off.vm.jit.tier1_enabled = false;

        let with = HpmRuntime::new(on).run(&p).unwrap();
        let without = HpmRuntime::new(off).run(&p).unwrap();
        assert!(
            with.vm.mem.l1_misses < without.vm.mem.l1_misses,
            "co-allocation must reduce L1 misses: {} vs {}",
            with.vm.mem.l1_misses,
            without.vm.mem.l1_misses
        );
        assert!(
            with.cycles < without.cycles,
            "and execution time: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn monitoring_off_costs_nothing() {
        let p = mini_db();
        let mut cfg = config(false);
        cfg.hpm.interval = SamplingInterval::Off;
        let report = HpmRuntime::new(cfg).run(&p).unwrap();
        assert_eq!(report.hpm.samples, 0);
        assert_eq!(report.vm.monitor_cycles, 0);
        assert_eq!(report.attribution.total(), 0);
    }

    #[test]
    fn watched_field_produces_series() {
        let p = mini_db();
        let mut cfg = config(true);
        cfg.vm.plan = Some(CompilationPlan::new(vec![p.entry()]));
        cfg.vm.jit.tier1_enabled = false;
        cfg.watch_fields = vec![("String".into(), "value".into())];
        let report = HpmRuntime::new(cfg).run(&p).unwrap();
        let (name, series) = &report.series[0];
        assert_eq!(name, "String::value");
        assert!(!series.is_empty());
        assert!(
            series.windows(2).all(|w| w[0].total <= w[1].total),
            "cumulative series is monotone"
        );
    }

    #[test]
    fn forced_bad_placement_is_reverted_by_feedback() {
        let p = mini_db();
        let mut cfg = config(true);
        cfg.vm.plan = Some(CompilationPlan::new(vec![p.entry()]));
        cfg.vm.jit.tier1_enabled = false;
        // Dense sampling and fast polls so periods are plentiful.
        cfg.hpm.interval = SamplingInterval::Fixed(256);
        cfg.forced_bad = Some(ForcedBadPlacement {
            class: "String".into(),
            field: "value".into(),
            gap_bytes: 128,
            at_cycles: 8_000_000,
        });
        cfg.feedback = FeedbackConfig {
            tolerance: 1.2,
            revert_after_periods: 2,
            min_period_misses: 2,
        };
        let report = HpmRuntime::new(cfg).run(&p).unwrap();
        let pinned = report
            .policy_events
            .iter()
            .any(|e| matches!(e, PolicyEvent::Pinned { .. }));
        assert!(
            pinned,
            "bad decision was installed: {:?}",
            report.policy_events
        );
        assert!(
            report.revert_count() > 0,
            "feedback must revert it: {:?}",
            report.policy_events
        );
    }
}
