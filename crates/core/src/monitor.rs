//! Online monitoring: batch sample processing and per-field miss
//! accounting.
//!
//! "Samples from the HPM unit are buffered and processed in batches
//! inside the VM: a sample is attributed to a reference field f if the
//! source instruction S is among the instructions of interest ... The
//! rate of events for each reference field is measured throughout the
//! execution and this allows detecting phase changes ... or checking
//! whether an optimization decision ... had a positive or a negative
//! impact." (Section 5.3)

use std::collections::{BTreeMap, BTreeSet};

use hpmopt_bytecode::{ClassId, FieldId, MethodId, Program};
use hpmopt_hpm::Sample;
use hpmopt_telemetry::{MetricId, SampleWitness, Telemetry};
use hpmopt_vm::machine::{CompiledCode, Tier};

use crate::interest::{analyze_method, InterestMap};
use crate::mapping::{ResolveFailure, SampleResolver};

/// Where samples ended up during batch processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionStats {
    /// Attributed to a reference field via an `(S, f)` tuple.
    pub attributed: u64,
    /// Resolved to a bytecode that is not an instruction of interest
    /// (or in a non-opt method, which the paper excludes).
    pub uninteresting: u64,
    /// PC had no map entry (opt code without the full-map extension).
    pub unmapped: u64,
    /// PC outside the VM code space (dropped immediately).
    pub foreign: u64,
    /// Captured in code the bounded cache freed before the sample was
    /// processed (epoch mismatch). Dropped, never misattributed to the
    /// range's new tenant.
    pub stale: u64,
}

impl AttributionStats {
    /// Total samples processed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.attributed + self.uninteresting + self.unmapped + self.foreign + self.stale
    }

    /// Fraction of samples attributed to a field (0 when idle).
    #[must_use]
    pub fn attribution_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.attributed as f64 / self.total() as f64
        }
    }
}

/// One point of a per-field time series: cumulative sampled misses at a
/// poll boundary (the stepwise-constant curves of Figure 7 come from this
/// batch grain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Cycle time of the poll.
    pub cycles: u64,
    /// Cumulative sampled misses attributed to the field.
    pub total: u64,
}

/// Monitoring-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Cycles to process one sample (method lookup, map walk, counter
    /// update).
    pub cycles_per_sample: u64,
    /// Fixed cycles per batch.
    pub cycles_per_batch: u64,
    /// Record per-field time series for watched fields.
    pub record_series: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            cycles_per_sample: 150,
            cycles_per_batch: 500,
            record_series: true,
        }
    }
}

/// The monitoring module.
#[derive(Debug, Clone, Default)]
struct FieldCounter {
    total: u64,
    window: u64,
}

/// Central sample-attribution bookkeeping.
#[derive(Debug, Clone)]
pub struct OnlineMonitor {
    config: MonitorConfig,
    resolver: SampleResolver,
    interest: BTreeMap<MethodId, InterestMap>,
    counters: BTreeMap<FieldId, FieldCounter>,
    attribution: AttributionStats,
    watched: BTreeSet<FieldId>,
    series: BTreeMap<FieldId, Vec<SeriesPoint>>,
    batches: u64,
    telemetry: Telemetry,
}

impl OnlineMonitor {
    /// Create an empty monitor.
    #[must_use]
    pub fn new(config: MonitorConfig) -> Self {
        OnlineMonitor {
            config,
            resolver: SampleResolver::new(),
            interest: BTreeMap::new(),
            counters: BTreeMap::new(),
            attribution: AttributionStats::default(),
            watched: BTreeSet::new(),
            series: BTreeMap::new(),
            batches: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; `core.samples.*` attribution counters
    /// and `core.batches` flow into it from now on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Register a (re)compiled artifact. Opt- and region-tier methods get
    /// the instructions-of-interest analysis (baseline methods are
    /// "rarely executed, otherwise they would be selected for
    /// re-compilation").
    pub fn register_artifact(&mut self, program: &Program, code: &CompiledCode) {
        if code.tier != Tier::Baseline {
            self.interest
                .entry(code.method)
                .or_insert_with(|| analyze_method(program, code.method));
        }
        self.resolver.register(code.clone());
    }

    /// Track a per-field time series for `field` (Figure 7).
    pub fn watch(&mut self, field: FieldId) {
        self.watched.insert(field);
        self.series.entry(field).or_default();
    }

    /// Process one batch of samples; returns the processing cost in
    /// cycles.
    pub fn process_batch(&mut self, samples: &[Sample], cycles: u64) -> u64 {
        for s in samples {
            match self.resolver.resolve(s.pc, s.epoch) {
                Err(ResolveFailure::ForeignPc) => {
                    self.attribution.foreign += 1;
                    self.telemetry.incr(MetricId::CoreSamplesForeign);
                }
                Err(ResolveFailure::Unmapped) => {
                    self.attribution.unmapped += 1;
                    self.telemetry.incr(MetricId::CoreSamplesUnmapped);
                }
                Err(ResolveFailure::Stale) => {
                    self.attribution.stale += 1;
                    self.telemetry.incr(MetricId::JitStaleSamples);
                }
                Ok(r) => {
                    let field = self
                        .interest
                        .get(&r.method)
                        .filter(|_| r.tier != Tier::Baseline)
                        .and_then(|m| m.field_for(r.bytecode_index));
                    match field {
                        Some(f) => {
                            self.attribution.attributed += 1;
                            self.telemetry.incr(MetricId::CoreSamplesAttributed);
                            // The provenance evidence: this sample's PC
                            // resolved through the MC map to this
                            // `(method, bytecode)` site and incremented
                            // this field's miss counter.
                            self.telemetry.witness_sample(
                                f.0,
                                SampleWitness {
                                    pc: s.pc,
                                    method: r.method.0,
                                    bytecode_index: r.bytecode_index,
                                    cycle: s.cycles,
                                },
                            );
                            let c = self.counters.entry(f).or_default();
                            c.total += 1;
                            c.window += 1;
                        }
                        None => {
                            self.attribution.uninteresting += 1;
                            self.telemetry.incr(MetricId::CoreSamplesUninteresting);
                        }
                    }
                }
            }
        }
        self.batches += 1;
        self.telemetry.incr(MetricId::CoreBatches);
        if self.config.record_series {
            for &f in &self.watched {
                let total = self.counters.get(&f).map_or(0, |c| c.total);
                self.series
                    .get_mut(&f)
                    .expect("watched fields have series")
                    .push(SeriesPoint { cycles, total });
            }
        }
        self.config.cycles_per_batch + samples.len() as u64 * self.config.cycles_per_sample
    }

    /// Seed a field's cumulative miss count from a persisted profile
    /// (warm start). Only the `total` is touched: the window counter
    /// feeds the feedback assessor, which must judge decisions on
    /// *this* run's behavior, not history.
    pub fn seed_total(&mut self, field: FieldId, misses: u64) {
        self.counters.entry(field).or_default().total += misses;
    }

    /// Per-field sampled misses since the previous call; resets the
    /// window counters (the feedback period grain).
    pub fn take_window(&mut self) -> BTreeMap<FieldId, u64> {
        let mut out = BTreeMap::new();
        for (&f, c) in &mut self.counters {
            if c.window > 0 {
                out.insert(f, c.window);
                c.window = 0;
            }
        }
        out
    }

    /// Cumulative sampled misses for `field`.
    #[must_use]
    pub fn total(&self, field: FieldId) -> u64 {
        self.counters.get(&field).map_or(0, |c| c.total)
    }

    /// All per-field totals, descending.
    #[must_use]
    pub fn field_totals(&self) -> Vec<(FieldId, u64)> {
        let mut v: Vec<(FieldId, u64)> = self.counters.iter().map(|(&f, c)| (f, c.total)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// "The VM keeps a list of the reference fields for each class type
    /// sorted by number of associated cache misses": the hottest field per
    /// class with its count.
    #[must_use]
    pub fn hottest_field_per_class(&self, program: &Program) -> BTreeMap<ClassId, (FieldId, u64)> {
        let mut best: BTreeMap<ClassId, (FieldId, u64)> = BTreeMap::new();
        for (&f, c) in &self.counters {
            let class = program.field(f).class;
            let e = best.entry(class).or_insert((f, 0));
            if c.total > e.1 {
                *e = (f, c.total);
            }
        }
        best
    }

    /// Attribution statistics.
    #[must_use]
    pub fn attribution(&self) -> AttributionStats {
        self.attribution
    }

    /// Recorded series for a watched field.
    #[must_use]
    pub fn series(&self, field: FieldId) -> &[SeriesPoint] {
        self.series.get(&field).map_or(&[], Vec::as_slice)
    }

    /// Batches processed so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Close the epoch window of the artifact at `code_start` (the code
    /// cache freed its range at `epoch`). Late samples stamped with an
    /// older epoch will resolve [`ResolveFailure::Stale`] from now on.
    pub fn retire_artifact(&mut self, code_start: u64, epoch: u64) {
        self.resolver.retire(code_start, epoch);
    }

    /// The PC resolver (for diagnostics).
    #[must_use]
    pub fn resolver(&self) -> &SampleResolver {
        &self.resolver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;
    use hpmopt_memsim::EventKind;
    use hpmopt_vm::compiler::compile;

    fn program() -> (Program, FieldId) {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
        let y = pb.field_id(a, "y").unwrap();
        let i = pb.field_id(a, "i").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(a); // 0
        m.store(0); // 1
        m.load(0); // 2
        m.get_field(y); // 3
        m.get_field(i); // 4: of interest via y
        m.pop(); // 5
        m.ret(); // 6
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), y)
    }

    fn sample(pc: u64) -> Sample {
        Sample {
            pc,
            data_addr: 0x1000_0000,
            event: EventKind::L1DMiss,
            cycles: 0,
            epoch: 0,
        }
    }

    #[test]
    fn attributes_interest_samples_to_fields() {
        let (p, y) = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot_pc = code.mem_pc(4);
        let cold_pc = code.mem_pc(3);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);

        let cost = mon.process_batch(&[sample(hot_pc), sample(hot_pc), sample(cold_pc)], 100);
        assert!(cost > 0);
        assert_eq!(mon.total(y), 2);
        let a = mon.attribution();
        assert_eq!(a.attributed, 2);
        assert_eq!(a.uninteresting, 1);
    }

    #[test]
    fn baseline_tier_samples_are_not_attributed() {
        let (p, y) = program();
        let code = compile(&p, p.entry(), Tier::Baseline, 0x4000_0000, true);
        let hot_pc = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        mon.process_batch(&[sample(hot_pc)], 0);
        assert_eq!(mon.total(y), 0);
        assert_eq!(mon.attribution().uninteresting, 1);
    }

    #[test]
    fn foreign_and_unmapped_samples_counted() {
        let (p, _) = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, false);
        let unmapped_pc = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        mon.process_batch(&[sample(0xdead), sample(unmapped_pc)], 0);
        let a = mon.attribution();
        assert_eq!(a.foreign, 1);
        assert_eq!(a.unmapped, 1);
        assert_eq!(a.attribution_rate(), 0.0);
    }

    #[test]
    fn window_resets_but_total_accumulates() {
        let (p, y) = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        mon.process_batch(&[sample(hot)], 0);
        assert_eq!(mon.take_window().get(&y), Some(&1));
        assert!(mon.take_window().is_empty(), "window was reset");
        mon.process_batch(&[sample(hot), sample(hot)], 1);
        assert_eq!(mon.take_window().get(&y), Some(&2));
        assert_eq!(mon.total(y), 3);
    }

    #[test]
    fn watched_fields_record_series() {
        let (p, y) = program();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        mon.watch(y);
        mon.process_batch(&[sample(hot)], 1000);
        mon.process_batch(&[sample(hot), sample(hot)], 2000);
        let s = mon.series(y);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0],
            SeriesPoint {
                cycles: 1000,
                total: 1
            }
        );
        assert_eq!(
            s[1],
            SeriesPoint {
                cycles: 2000,
                total: 3
            }
        );
    }

    #[test]
    fn samples_in_freed_then_reused_ranges_go_stale_not_misattributed() {
        let (p, y) = program();
        let opt = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot_pc = opt.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &opt);

        // Epoch-0 sample in live opt code attributes normally.
        mon.process_batch(&[sample(hot_pc)], 0);
        assert_eq!(mon.total(y), 1);

        // The cache evicts the opt artifact (epoch 0 → 1) and reinstalls
        // the method as baseline code over the same range.
        mon.retire_artifact(0x4000_0000, 1);
        let mut tenant = compile(&p, p.entry(), Tier::Baseline, 0x4000_0000, true);
        tenant.install_epoch = 1;
        mon.register_artifact(&p, &tenant);

        // A late sample captured before the free (epoch 0): counted as
        // stale, no field counter moves.
        let late = Sample {
            epoch: 0,
            ..sample(hot_pc)
        };
        mon.process_batch(&[late], 1);
        let a = mon.attribution();
        assert_eq!(a.stale, 1);
        assert_eq!(mon.total(y), 1, "stale sample attributed to nothing");

        // A fresh sample (epoch 1) resolves to the baseline tenant and is
        // merely uninteresting — never credited to the evicted opt code.
        mon.process_batch(&[sample_at_epoch(hot_pc, 1)], 2);
        let a = mon.attribution();
        assert_eq!(a.stale, 1);
        assert_eq!(a.uninteresting, 1);
        assert_eq!(mon.total(y), 1);
        assert_eq!(a.total(), 3);
    }

    fn sample_at_epoch(pc: u64, epoch: u64) -> Sample {
        Sample {
            epoch,
            ..sample(pc)
        }
    }

    #[test]
    fn hottest_field_per_class_picks_maximum() {
        let (p, y) = program();
        let class = p.field(y).class;
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        mon.process_batch(&[sample(hot); 5], 0);
        let best = mon.hottest_field_per_class(&p);
        assert_eq!(best.get(&class), Some(&(y, 5)));
        assert_eq!(mon.field_totals(), vec![(y, 5)]);
    }
}
