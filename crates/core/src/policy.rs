//! The adaptive co-allocation policy.
//!
//! Turns the monitor's per-class hottest-field lists into the
//! [`CoallocPolicy`] the GenMS collector consults while tracing the
//! nursery (Section 5.4). Decisions can also be *pinned* externally —
//! the Figure 8 experiment pins a deliberately bad decision (a cache line
//! of padding between parent and child) to exercise the feedback loop —
//! and *blocked* by the feedback assessor so a reverted decision is not
//! immediately re-enabled.

use std::collections::{BTreeMap, BTreeSet};

use hpmopt_bytecode::{ClassId, FieldId, Program};
use hpmopt_gc::policy::{CoallocDecision, CoallocPolicy};

use crate::monitor::OnlineMonitor;

/// Something the policy did, with its cycle timestamp (the report's
/// decision log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEvent {
    /// Co-allocation enabled for a class through the named field.
    Enabled {
        /// When.
        cycles: u64,
        /// Which class.
        class: ClassId,
        /// Through which field.
        field: FieldId,
    },
    /// A pinned (externally forced) decision was installed.
    Pinned {
        /// When.
        cycles: u64,
        /// Which class.
        class: ClassId,
        /// Padding inserted between parent and child.
        gap_bytes: u64,
    },
    /// A decision was reverted by the feedback assessor.
    Reverted {
        /// When.
        cycles: u64,
        /// Which class.
        class: ClassId,
    },
    /// A decision was installed at startup from a persisted profile,
    /// before any sample of this run was taken.
    WarmStarted {
        /// When (normally 0).
        cycles: u64,
        /// Which class.
        class: ClassId,
        /// Through which field.
        field: FieldId,
    },
}

/// Policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Minimum sampled misses on a field before its class is co-allocated
    /// (too few samples are statistically meaningless).
    pub min_field_misses: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            min_field_misses: 8,
        }
    }
}

/// Miss-driven co-allocation decisions, refreshed from the monitor after
/// every batch.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    config: PolicyConfig,
    decisions: BTreeMap<ClassId, (FieldId, CoallocDecision)>,
    pinned: BTreeMap<ClassId, CoallocDecision>,
    blocked: BTreeSet<ClassId>,
    events: Vec<PolicyEvent>,
}

impl AdaptivePolicy {
    /// Create an empty policy.
    #[must_use]
    pub fn new(config: PolicyConfig) -> Self {
        AdaptivePolicy {
            config,
            decisions: BTreeMap::new(),
            pinned: BTreeMap::new(),
            blocked: BTreeSet::new(),
            events: Vec::new(),
        }
    }

    /// Re-derive decisions from the monitor's counters: each class
    /// co-allocates its hottest reference field once that field crossed
    /// the miss threshold.
    pub fn refresh(&mut self, program: &Program, monitor: &OnlineMonitor, cycles: u64) {
        for (class, (field, misses)) in monitor.hottest_field_per_class(program) {
            if misses < self.config.min_field_misses || self.blocked.contains(&class) {
                continue;
            }
            let decision = CoallocDecision {
                field_offset: program.field(field).offset,
                gap_bytes: 0,
            };
            let is_new = match self.decisions.get(&class) {
                Some((old_field, _)) => *old_field != field,
                None => true,
            };
            if is_new {
                self.decisions.insert(class, (field, decision));
                self.events.push(PolicyEvent::Enabled {
                    cycles,
                    class,
                    field,
                });
            }
        }
    }

    /// Install a decision from a persisted profile at startup. Skipped
    /// if the class is blocked or already decided; the adaptive
    /// `refresh` treats a warm-seeded `(class, field)` as current, so
    /// it will not emit a duplicate `Enabled` event for the same pair.
    pub fn warm_start(&mut self, program: &Program, class: ClassId, field: FieldId, cycles: u64) {
        if self.blocked.contains(&class) || self.decisions.contains_key(&class) {
            return;
        }
        let decision = CoallocDecision {
            field_offset: program.field(field).offset,
            gap_bytes: 0,
        };
        self.decisions.insert(class, (field, decision));
        self.events.push(PolicyEvent::WarmStarted {
            cycles,
            class,
            field,
        });
    }

    /// Pin a decision that overrides the adaptive one (Figure 8's bad
    /// placement).
    pub fn pin(&mut self, class: ClassId, decision: CoallocDecision, cycles: u64) {
        self.pinned.insert(class, decision);
        self.events.push(PolicyEvent::Pinned {
            cycles,
            class,
            gap_bytes: decision.gap_bytes,
        });
    }

    /// Revert a class's decision (feedback): removes pin and adaptive
    /// decision and blocks re-enablement.
    pub fn revert(&mut self, class: ClassId, cycles: u64) {
        let had = self.pinned.remove(&class).is_some() | self.decisions.remove(&class).is_some();
        if had {
            self.events.push(PolicyEvent::Reverted { cycles, class });
        }
        // A pinned bad decision reverts to the adaptive path; an adaptive
        // decision that regressed must not come back.
        if !self.blocked.contains(&class) && !self.decisions.contains_key(&class) {
            self.blocked.insert(class);
        }
    }

    /// Remove only a pin, letting the adaptive decision (if any) resume.
    pub fn unpin(&mut self, class: ClassId, cycles: u64) {
        if self.pinned.remove(&class).is_some() {
            self.events.push(PolicyEvent::Reverted { cycles, class });
        }
    }

    /// Classes with an active (pinned or adaptive) decision.
    #[must_use]
    pub fn active_classes(&self) -> Vec<ClassId> {
        let mut v: Vec<ClassId> = self
            .pinned
            .keys()
            .chain(self.decisions.keys())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The configuration in force (the provenance trail records its
    /// threshold alongside each decision).
    #[must_use]
    pub fn config(&self) -> PolicyConfig {
        self.config
    }

    /// The decision log.
    #[must_use]
    pub fn events(&self) -> &[PolicyEvent] {
        &self.events
    }

    /// Current adaptive decisions as `(class, field)` pairs.
    #[must_use]
    pub fn decisions(&self) -> Vec<(ClassId, FieldId)> {
        self.decisions.iter().map(|(&c, &(f, _))| (c, f)).collect()
    }
}

impl CoallocPolicy for AdaptivePolicy {
    fn coalloc_child(&self, class: ClassId) -> Option<CoallocDecision> {
        if let Some(d) = self.pinned.get(&class) {
            return Some(*d);
        }
        self.decisions.get(&class).map(|&(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, OnlineMonitor};
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;
    use hpmopt_hpm::Sample;
    use hpmopt_memsim::EventKind;
    use hpmopt_vm::compiler::compile;
    use hpmopt_vm::machine::Tier;

    fn setup() -> (hpmopt_bytecode::Program, FieldId, OnlineMonitor, u64) {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
        let y = pb.field_id(a, "y").unwrap();
        let i = pb.field_id(a, "i").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(a);
        m.store(0);
        m.load(0);
        m.get_field(y);
        m.get_field(i); // bc 4: of interest
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let hot_pc = code.mem_pc(4);
        let mut mon = OnlineMonitor::new(MonitorConfig::default());
        mon.register_artifact(&p, &code);
        (p, y, mon, hot_pc)
    }

    fn feed(mon: &mut OnlineMonitor, pc: u64, n: usize) {
        let s = Sample {
            pc,
            data_addr: 0,
            event: EventKind::L1DMiss,
            cycles: 0,
            epoch: 0,
        };
        mon.process_batch(&vec![s; n], 0);
    }

    #[test]
    fn refresh_enables_decision_above_threshold() {
        let (p, y, mut mon, hot) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig {
            min_field_misses: 8,
        });
        feed(&mut mon, hot, 5);
        pol.refresh(&p, &mon, 100);
        assert!(pol.coalloc_child(class).is_none(), "below threshold");

        feed(&mut mon, hot, 5);
        pol.refresh(&p, &mon, 200);
        let d = pol.coalloc_child(class).expect("enabled");
        assert_eq!(d.field_offset, p.field(y).offset);
        assert_eq!(d.gap_bytes, 0);
        assert_eq!(pol.events().len(), 1);
        // Idempotent: refresh again does not duplicate events.
        pol.refresh(&p, &mon, 300);
        assert_eq!(pol.events().len(), 1);
    }

    #[test]
    fn pin_overrides_and_unpin_restores() {
        let (p, y, mut mon, hot) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig::default());
        feed(&mut mon, hot, 20);
        pol.refresh(&p, &mon, 0);
        let bad = CoallocDecision {
            field_offset: p.field(y).offset,
            gap_bytes: 128,
        };
        pol.pin(class, bad, 500);
        assert_eq!(pol.coalloc_child(class).unwrap().gap_bytes, 128);
        pol.unpin(class, 600);
        assert_eq!(
            pol.coalloc_child(class).unwrap().gap_bytes,
            0,
            "adaptive resumes"
        );
    }

    #[test]
    fn revert_blocks_reenablement() {
        let (p, y, mut mon, hot) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig::default());
        feed(&mut mon, hot, 20);
        pol.refresh(&p, &mon, 0);
        assert!(pol.coalloc_child(class).is_some());
        pol.revert(class, 1000);
        assert!(pol.coalloc_child(class).is_none());
        pol.refresh(&p, &mon, 2000);
        assert!(pol.coalloc_child(class).is_none(), "blocked after revert");
    }

    #[test]
    fn warm_start_installs_before_any_sample() {
        let (p, y, mon, _) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig::default());
        pol.warm_start(&p, class, y, 0);
        let d = pol.coalloc_child(class).expect("installed at cycle 0");
        assert_eq!(d.field_offset, p.field(y).offset);
        assert_eq!(
            pol.events(),
            &[PolicyEvent::WarmStarted {
                cycles: 0,
                class,
                field: y
            }]
        );
        // The adaptive refresh sees the same (class, field) as current
        // and does not emit a duplicate Enabled event.
        pol.refresh(&p, &mon, 100);
        assert_eq!(pol.events().len(), 1);
        // Re-seeding is a no-op once a decision exists.
        pol.warm_start(&p, class, y, 0);
        assert_eq!(pol.events().len(), 1);
    }

    #[test]
    fn warm_start_respects_blocked_classes() {
        let (p, y, mut mon, hot) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig::default());
        feed(&mut mon, hot, 20);
        pol.refresh(&p, &mon, 0);
        pol.revert(class, 1000);
        pol.warm_start(&p, class, y, 0);
        assert!(pol.coalloc_child(class).is_none(), "blocked stays blocked");
    }

    #[test]
    fn active_classes_lists_pins_and_decisions() {
        let (p, y, mut mon, hot) = setup();
        let class = p.field(y).class;
        let mut pol = AdaptivePolicy::new(PolicyConfig::default());
        assert!(pol.active_classes().is_empty());
        feed(&mut mon, hot, 20);
        pol.refresh(&p, &mon, 0);
        assert_eq!(pol.active_classes(), vec![class]);
    }
}
