//! Instructions-of-interest analysis.
//!
//! "For each heap access instruction S it checks if the target address is
//! loaded from a field variable f (also located on the heap). If yes, it
//! saves a tuple (S, f). ... The opt-compiler computes this mapping by
//! walking the use-def edges upwards from heap access instructions."
//! (Section 5.2)
//!
//! On our stack bytecode the use-def walk is an abstract interpretation
//! that tracks, for every operand-stack slot and local variable, which
//! reference field (if any) produced the value. A fixpoint over all
//! control-flow paths merges conflicting origins to ⊤ (unknown).
//!
//! For the paper's running example `p.y.i` (Figure 1) the analysis maps
//! the load of `i` to field `A::y`: a cache miss on `I3` is blamed on the
//! reference `y`, so co-allocating `p.y` with `p` can remove it.

use std::collections::BTreeMap;

use hpmopt_bytecode::{FieldId, Instr, MethodId, Program};

/// The origin of a value: `Some(f)` when it was produced by `GetField(f)`
/// on a reference field, `None` otherwise (⊤).
type Origin = Option<FieldId>;

/// Result of the analysis for one method: bytecode index of each
/// instruction of interest → the reference field its base object came
/// from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterestMap {
    entries: BTreeMap<u32, FieldId>,
}

impl InterestMap {
    /// Field blamed for misses at bytecode `bc`, if it is an instruction
    /// of interest.
    #[must_use]
    pub fn field_for(&self, bc: u32) -> Option<FieldId> {
        self.entries.get(&bc).copied()
    }

    /// Number of `(S, f)` tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the method has no instructions of interest.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(bytecode index, field)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, FieldId)> + '_ {
        self.entries.iter().map(|(&bc, &f)| (bc, f))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    stack: Vec<Origin>,
    locals: Vec<Origin>,
}

fn merge(a: &mut AbsState, b: &AbsState) -> bool {
    debug_assert_eq!(a.stack.len(), b.stack.len(), "verifier guarantees depth");
    let mut changed = false;
    for (x, y) in a
        .stack
        .iter_mut()
        .zip(&b.stack)
        .chain(a.locals.iter_mut().zip(&b.locals))
    {
        if *x != *y && x.is_some() {
            *x = None;
            changed = true;
        }
    }
    changed
}

/// Run the analysis for one method.
///
/// Conservative rules: only `GetField` of a reference field produces a
/// tracked origin; locals propagate origins; any join of different
/// origins, and every other producer (calls, statics, array loads,
/// allocations), yields ⊤.
#[must_use]
pub fn analyze_method(program: &Program, method: MethodId) -> InterestMap {
    let m = program.method(method);
    let body = m.body();
    let mut states: Vec<Option<AbsState>> = vec![None; body.len()];
    let entry = AbsState {
        stack: Vec::new(),
        locals: vec![None; m.locals() as usize],
    };
    let mut worklist = vec![(0usize, entry)];

    while let Some((pc, state)) = worklist.pop() {
        if pc >= body.len() {
            continue;
        }
        match &mut states[pc] {
            slot @ None => *slot = Some(state.clone()),
            Some(existing) => {
                if !merge(existing, &state) {
                    continue;
                }
            }
        }
        let mut s = states[pc].clone().expect("just set");
        let i = body[pc];

        // Transfer function.
        match i {
            Instr::Const(_) | Instr::ConstNull | Instr::New(_) | Instr::GetStatic(_) => {
                s.stack.push(None);
            }
            Instr::Load(n) => {
                let v = s.locals[n as usize];
                s.stack.push(v);
            }
            Instr::Store(n) => {
                let v = s.stack.pop().expect("verified");
                s.locals[n as usize] = v;
            }
            Instr::Dup => {
                let v = *s.stack.last().expect("verified");
                s.stack.push(v);
            }
            Instr::Pop | Instr::PutStatic(_) | Instr::JumpIf(_) | Instr::JumpIfNot(_) => {
                s.stack.pop();
            }
            Instr::Swap => {
                let n = s.stack.len();
                s.stack.swap(n - 1, n - 2);
            }
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::And
            | Instr::Or
            | Instr::Xor
            | Instr::Shl
            | Instr::Shr
            | Instr::UShr
            | Instr::Eq
            | Instr::Ne
            | Instr::Lt
            | Instr::Le
            | Instr::Gt
            | Instr::Ge
            | Instr::RefEq => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(None);
            }
            Instr::Neg | Instr::IsNull | Instr::NewArray(_) | Instr::ArrayLen => {
                s.stack.pop();
                s.stack.push(None);
            }
            Instr::GetField(f) => {
                s.stack.pop();
                let origin = if program.field(f).ty.is_ref() {
                    Some(f)
                } else {
                    None
                };
                s.stack.push(origin);
            }
            Instr::PutField(_) => {
                s.stack.pop();
                s.stack.pop();
            }
            Instr::ArrayGet(_) => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(None);
            }
            Instr::ArraySet(_) => {
                s.stack.pop();
                s.stack.pop();
                s.stack.pop();
            }
            Instr::Call(callee) => {
                let c = program.method(callee);
                for _ in 0..c.params() {
                    s.stack.pop();
                }
                if c.returns_value() {
                    s.stack.push(None);
                }
            }
            Instr::Jump(_) | Instr::Return | Instr::ReturnVal => {}
        }

        // Successors.
        match i {
            Instr::Return | Instr::ReturnVal => {}
            Instr::Jump(t) => worklist.push((t as usize, s)),
            Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                worklist.push((t as usize, s.clone()));
                worklist.push((pc + 1, s));
            }
            _ => worklist.push((pc + 1, s)),
        }
    }

    // Read the (S, f) tuples off the fixpoint states: only origins that
    // survive *every* path into S count (a may-be-wrong attribution would
    // co-allocate the wrong child).
    let mut map = BTreeMap::new();
    for (pc, state) in states.iter().enumerate() {
        let Some(s) = state else { continue };
        let base_depth = match body[pc] {
            Instr::GetField(_) | Instr::ArrayLen => 0,
            Instr::PutField(_) | Instr::ArrayGet(_) => 1,
            Instr::ArraySet(_) => 2,
            _ => continue,
        };
        let idx = s.stack.len() - 1 - base_depth;
        if let Some(f) = s.stack[idx] {
            map.insert(pc as u32, f);
        }
    }

    InterestMap { entries: map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::{ElemKind, FieldType, Program};

    /// The paper's Figure 1: `class A { A y; int i; }` and expression
    /// `p.y.i`.
    fn figure1() -> (Program, FieldId) {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
        let y = pb.field_id(a, "y").unwrap();
        let i = pb.field_id(a, "i").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(a); // 0
        m.store(0); // 1: local p
        m.load(0); // 2: I1 aload p
        m.get_field(y); // 3: I2 getfield y
        m.get_field(i); // 4: I3 getfield i
        m.pop(); // 5
        m.ret(); // 6
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), y)
    }

    #[test]
    fn figure1_maps_i3_to_field_y() {
        let (p, y) = figure1();
        let map = analyze_method(&p, p.entry());
        assert_eq!(map.field_for(4), Some(y), "(I3, A::y) tuple");
        assert_eq!(map.field_for(3), None, "I2's base is a local, not a field");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn array_access_through_field_is_of_interest() {
        // s.value[i] — the db benchmark's hot pattern.
        let mut pb = ProgramBuilder::new();
        let s = pb.add_class("String", &[("value", FieldType::Ref)]);
        let value = pb.field_id(s, "value").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(s); // 0
        m.store(0); // 1
        m.load(0); // 2
        m.get_field(value); // 3
        m.const_i(0); // 4
        m.array_get(ElemKind::I16); // 5  <- of interest via `value`
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let map = analyze_method(&p, p.entry());
        assert_eq!(map.field_for(5), Some(value));
    }

    #[test]
    fn origin_survives_store_load_round_trip() {
        let (pb, y) = {
            let mut pb = ProgramBuilder::new();
            let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
            let y = pb.field_id(a, "y").unwrap();
            let i = pb.field_id(a, "i").unwrap();
            let mut m = MethodBuilder::new("main", 0, 2, false);
            m.new_object(a);
            m.store(0);
            m.load(0);
            m.get_field(y);
            m.store(1); // stash p.y in a local
            m.load(1); // reload it
            m.get_field(i); // 6: still attributable to y
            m.pop();
            m.ret();
            let id = pb.add_method(m);
            pb.set_entry(id);
            (pb.finish().unwrap(), y)
        };
        let map = analyze_method(&pb, pb.entry());
        assert_eq!(map.field_for(6), Some(y));
    }

    #[test]
    fn conflicting_origins_merge_to_unknown() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class(
            "A",
            &[
                ("y", FieldType::Ref),
                ("z", FieldType::Ref),
                ("i", FieldType::Int),
            ],
        );
        let y = pb.field_id(a, "y").unwrap();
        let z = pb.field_id(a, "z").unwrap();
        let i = pb.field_id(a, "i").unwrap();
        let mut m = MethodBuilder::new("main", 0, 2, false);
        // local1 = cond ? p.y : p.z; then load local1.i
        m.new_object(a); // 0
        m.store(0); // 1
        let else_ = m.label();
        let join = m.label();
        m.const_i(1); // 2
        m.jump_if_not(else_); // 3
        m.load(0); // 4
        m.get_field(y); // 5
        m.store(1); // 6
        m.jump(join); // 7
        m.bind(else_);
        m.load(0); // 8
        m.get_field(z); // 9
        m.store(1); // 10
        m.bind(join);
        m.load(1); // 11
        m.get_field(i); // 12 — ambiguous origin
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let map = analyze_method(&p, p.entry());
        assert_eq!(map.field_for(12), None, "y vs z merges to unknown");
    }

    #[test]
    fn int_fields_produce_no_origin() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("n", FieldType::Int)]);
        let n = pb.field_id(a, "n").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(a);
        m.store(0);
        m.load(0);
        m.get_field(n);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let map = analyze_method(&p, p.entry());
        assert!(map.is_empty());
    }

    #[test]
    fn call_results_are_unknown() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
        let i = pb.field_id(a, "i").unwrap();
        let mut mk = MethodBuilder::new("mk", 0, 0, true);
        mk.new_object(a);
        mk.ret_val();
        let mk = pb.add_method(mk);
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.call(mk); // 0
        m.get_field(i); // 1 — base from a call: not of interest
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let map = analyze_method(&p, p.entry());
        assert!(map.is_empty());
        let _ = i;
    }

    #[test]
    fn loop_fixpoint_terminates_and_attributes() {
        // while (p != null) { sum += p.next.i; p = p.next; }
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("Node", &[("next", FieldType::Ref), ("i", FieldType::Int)]);
        let next = pb.field_id(a, "next").unwrap();
        let i = pb.field_id(a, "i").unwrap();
        let mut m = MethodBuilder::new("main", 0, 2, false);
        m.new_object(a); // 0
        m.store(0); // 1
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.load(0); // 2
        m.is_null(); // 3
        m.jump_if(out); // 4
        m.load(0); // 5
        m.get_field(next); // 6
        m.get_field(i); // 7 — of interest via `next`
        m.pop(); // 8
        m.load(0); // 9
        m.get_field(next); // 10
        m.store(0); // 11: p = p.next (origin flows into local 0!)
        m.jump(top); // 12
        m.bind(out);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let map = analyze_method(&p, p.entry());
        assert_eq!(map.field_for(7), Some(next));
        // After the back edge, local 0 merges {fresh object, p.next} → the
        // second iteration's `p.i` style accesses would be unknown; but
        // instruction 6 (p.next where p may originate from next) is
        // attributed on iterations ≥ 2 — the analysis is a may-analysis
        // over all paths and must stay conservative: 6's base merges
        // None ⊓ Some(next) = None.
        assert_eq!(map.field_for(6), None);
    }
}
