//! Point-in-time telemetry snapshots: capture, diff, export.
//!
//! A [`TelemetrySnapshot`] freezes every metric plus the retained
//! event trace at one simulated-clock instant. Snapshots support
//! interval accounting via [`TelemetrySnapshot::diff`] (counters are
//! subtracted, gauges keep the later reading) and two export formats:
//! hand-rolled JSON ([`TelemetrySnapshot::to_json`]) and a
//! human-readable table ([`TelemetrySnapshot::render_text`]).

use crate::hist::{bucket_le, HistogramId, HistogramSnapshot};
use crate::json::JsonWriter;
use crate::metrics::{MetricId, MetricKind};
use crate::provenance::DecisionRecord;
use crate::trace::{TraceEvent, TraceKind};

/// Frozen copy of the registry, histograms, trace, and provenance log
/// at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Simulated cycle at which the snapshot was taken.
    pub at_cycle: u64,
    /// Metric values, aligned with [`MetricId::ALL`].
    pub values: Vec<u64>,
    /// Histogram states, aligned with [`HistogramId::ALL`].
    pub hists: Vec<HistogramSnapshot>,
    /// Retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Trace events lost to ring wraparound before this snapshot.
    pub dropped_events: u64,
    /// Retained decision-provenance records, oldest first.
    pub decisions: Vec<DecisionRecord>,
    /// Provenance records lost to wraparound before this snapshot.
    pub decisions_dropped: u64,
}

impl TelemetrySnapshot {
    /// An all-zero snapshot (what [`crate::Telemetry::disabled`]
    /// produces).
    pub fn empty() -> Self {
        Self {
            at_cycle: 0,
            values: vec![0; MetricId::COUNT],
            hists: vec![HistogramSnapshot::empty(); HistogramId::COUNT],
            events: Vec::new(),
            dropped_events: 0,
            decisions: Vec::new(),
            decisions_dropped: 0,
        }
    }

    /// Value of one metric in this snapshot.
    pub fn get(&self, id: MetricId) -> u64 {
        self.values[id as usize]
    }

    /// One histogram's state in this snapshot.
    pub fn hist(&self, id: HistogramId) -> &HistogramSnapshot {
        &self.hists[id as usize]
    }

    /// Interval between `earlier` and `self`: counters become the
    /// delta accumulated in between (saturating, so a reset or
    /// mismatched pair cannot underflow), gauges keep this snapshot's
    /// reading. Events retained are those stamped after
    /// `earlier.at_cycle`.
    pub fn diff(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let values = MetricId::ALL
            .iter()
            .map(|&id| match id.kind() {
                MetricKind::Counter => self.get(id).saturating_sub(earlier.get(id)),
                MetricKind::Gauge => self.get(id),
            })
            .collect();
        let events = self
            .events
            .iter()
            .filter(|e| e.cycle > earlier.at_cycle)
            .cloned()
            .collect();
        let hists = self
            .hists
            .iter()
            .zip(&earlier.hists)
            .map(|(late, early)| late.diff(early))
            .collect();
        let decisions = self
            .decisions
            .iter()
            .filter(|d| d.cycle > earlier.at_cycle)
            .cloned()
            .collect();
        TelemetrySnapshot {
            at_cycle: self.at_cycle,
            values,
            hists,
            events,
            dropped_events: self.dropped_events.saturating_sub(earlier.dropped_events),
            decisions,
            decisions_dropped: self
                .decisions_dropped
                .saturating_sub(earlier.decisions_dropped),
        }
    }

    /// Serialize the snapshot as a JSON object:
    /// `{ "at_cycle", "metrics": {name: value, …}, "histograms":
    /// {name: {count, sum, buckets: [{le, count}, …]}, …},
    /// "dropped_events", "events": [{"cycle", "type", …payload}],
    /// "decisions_dropped", "decisions": […] }`. Key order follows
    /// the static declaration tables, so output is byte-stable.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Write the snapshot object at the writer's current value
    /// position (top level or after [`JsonWriter::key`]).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.object_value();
        w.field_u64("at_cycle", self.at_cycle);
        w.key("metrics").object_value();
        for &id in MetricId::ALL {
            w.field_u64(id.name(), self.get(id));
        }
        w.end_object();
        w.key("histograms").object_value();
        for &id in HistogramId::ALL {
            let hist = &self.hists[id as usize];
            w.key(id.name()).object_value();
            w.field_u64("count", hist.count());
            w.field_u64("sum", hist.sum);
            w.key("buckets").array_value();
            // Only buckets with observations; `le` makes each
            // self-describing, and the export stays compact.
            for (i, &count) in hist.buckets.iter().enumerate() {
                if count > 0 {
                    w.begin_object();
                    w.field_str("le", &bucket_le(i));
                    w.field_u64("count", count);
                    w.end_object();
                }
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.field_u64("dropped_events", self.dropped_events);
        w.key("events").array_value();
        for event in &self.events {
            write_event(w, event);
        }
        w.end_array();
        w.field_u64("decisions_dropped", self.decisions_dropped);
        w.key("decisions").array_value();
        for decision in &self.decisions {
            write_decision(w, decision);
        }
        w.end_array();
        w.end_object();
    }

    /// Render the snapshot as an aligned, grouped plain-text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry @ cycle {}\n", self.at_cycle));
        let mut last_ns = "";
        let width = MetricId::ALL
            .iter()
            .map(|id| id.name().len())
            .max()
            .unwrap_or(0);
        for &id in MetricId::ALL {
            let ns = id.name().split('.').next().unwrap_or("");
            if ns != last_ns {
                out.push_str(&format!("  [{ns}]\n"));
                last_ns = ns;
            }
            out.push_str(&format!(
                "    {:<width$}  {}\n",
                id.name(),
                self.get(id),
                width = width
            ));
        }
        let live: Vec<HistogramId> = HistogramId::ALL
            .iter()
            .copied()
            .filter(|&id| self.hists[id as usize].count() > 0)
            .collect();
        if !live.is_empty() {
            out.push_str("  [histograms]\n");
            for id in live {
                let h = &self.hists[id as usize];
                out.push_str(&format!(
                    "    {:<width$}  count={} mean={:.1}\n",
                    id.name(),
                    h.count(),
                    h.mean(),
                    width = width
                ));
            }
        }
        out.push_str(&format!(
            "  trace: {} event(s) retained, {} dropped\n",
            self.events.len(),
            self.dropped_events
        ));
        for event in &self.events {
            out.push_str(&format!(
                "    cycle {:>12}  {}\n",
                event.cycle,
                describe_event(&event.kind)
            ));
        }
        if !self.decisions.is_empty() || self.decisions_dropped > 0 {
            out.push_str(&format!(
                "  provenance: {} decision(s) retained, {} dropped\n",
                self.decisions.len(),
                self.decisions_dropped
            ));
        }
        out
    }
}

fn write_decision(w: &mut JsonWriter, d: &DecisionRecord) {
    w.begin_object();
    w.field_u64("cycle", d.cycle);
    w.field_u64("class", u64::from(d.class));
    if d.field == u32::MAX {
        w.key("field").str_value("*");
    } else {
        w.field_u64("field", u64::from(d.field));
    }
    w.field_str("action", d.action);
    w.field_u64("field_misses", d.field_misses);
    w.field_u64("threshold", d.threshold);
    w.field_u64("gap_bytes", d.gap_bytes);
    w.key("witnesses").array_value();
    for wit in &d.witnesses {
        w.begin_object();
        w.field_u64("pc", wit.pc);
        w.field_u64("method", u64::from(wit.method));
        w.field_u64("bytecode_index", u64::from(wit.bytecode_index));
        w.field_u64("cycle", wit.cycle);
        w.end_object();
    }
    w.end_array();
    if let Some(fb) = &d.feedback {
        w.key("feedback").object_value();
        w.field_f64("baseline_rate", fb.baseline_rate);
        w.field_f64("observed_rate", fb.observed_rate);
        w.field_f64("tolerance", fb.tolerance);
        w.field_u64("regressing_periods", fb.regressing_periods);
        w.end_object();
    }
    w.end_object();
}

fn write_event(w: &mut JsonWriter, event: &TraceEvent) {
    w.begin_object();
    w.field_u64("cycle", event.cycle);
    w.field_str("type", event.kind.name());
    match &event.kind {
        TraceKind::PollCompleted {
            samples,
            attributed,
        } => {
            w.field_u64("samples", *samples);
            w.field_u64("attributed", *attributed);
        }
        TraceKind::BufferOverflow { dropped } => {
            w.field_u64("dropped", *dropped);
        }
        TraceKind::GcCollection {
            major,
            promoted_bytes,
        } => {
            w.field_bool("major", *major);
            w.field_u64("promoted_bytes", *promoted_bytes);
        }
        TraceKind::Recompilation { method, tier } => {
            w.field_u64("method", u64::from(*method));
            w.field_str("tier", tier);
        }
        TraceKind::Deopt { method } => {
            w.field_u64("method", u64::from(*method));
        }
        TraceKind::CodeEviction {
            method,
            tier,
            epoch,
            evicted,
        } => {
            w.field_u64("method", u64::from(*method));
            w.field_str("tier", tier);
            w.field_u64("epoch", *epoch);
            w.field_bool("evicted", *evicted);
        }
        TraceKind::CoallocDecision {
            class,
            field,
            action,
        } => {
            w.field_u64("class", u64::from(*class));
            w.field_u64("field", u64::from(*field));
            w.field_str("action", action);
        }
        TraceKind::PhaseChange { miss_rate_ppm } => {
            w.field_u64("miss_rate_ppm", *miss_rate_ppm);
        }
        TraceKind::WarmStart {
            seeded_fields,
            seeded_decisions,
        } => {
            w.field_u64("seeded_fields", *seeded_fields);
            w.field_u64("seeded_decisions", *seeded_decisions);
        }
    }
    w.end_object();
}

fn describe_event(kind: &TraceKind) -> String {
    match kind {
        TraceKind::PollCompleted {
            samples,
            attributed,
        } => {
            format!("poll_completed samples={samples} attributed={attributed}")
        }
        TraceKind::BufferOverflow { dropped } => format!("buffer_overflow dropped={dropped}"),
        TraceKind::GcCollection {
            major,
            promoted_bytes,
        } => format!(
            "gc_collection kind={} promoted_bytes={promoted_bytes}",
            if *major { "major" } else { "minor" }
        ),
        TraceKind::Recompilation { method, tier } => {
            format!("recompilation method={method} tier={tier}")
        }
        TraceKind::Deopt { method } => format!("deopt method={method}"),
        TraceKind::CodeEviction {
            method,
            tier,
            epoch,
            evicted,
        } => format!(
            "code_eviction method={method} tier={tier} epoch={epoch} cause={}",
            if *evicted { "capacity" } else { "replaced" }
        ),
        TraceKind::CoallocDecision {
            class,
            field,
            action,
        } => format!("coalloc_decision class={class} field={field} action={action}"),
        TraceKind::PhaseChange { miss_rate_ppm } => {
            format!("phase_change miss_rate_ppm={miss_rate_ppm}")
        }
        TraceKind::WarmStart {
            seeded_fields,
            seeded_decisions,
        } => {
            format!("warm_start seeded_fields={seeded_fields} seeded_decisions={seeded_decisions}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_counters_and_gauges() {
        let mut earlier = TelemetrySnapshot::empty();
        let mut later = TelemetrySnapshot::empty();
        earlier.values[MetricId::HpmSamplesGenerated as usize] = 10;
        later.values[MetricId::HpmSamplesGenerated as usize] = 25;
        earlier.values[MetricId::HpmPollPeriodMs as usize] = 40;
        later.values[MetricId::HpmPollPeriodMs as usize] = 20;
        later.at_cycle = 100;
        let d = later.diff(&earlier);
        assert_eq!(d.get(MetricId::HpmSamplesGenerated), 15);
        assert_eq!(d.get(MetricId::HpmPollPeriodMs), 20);
    }

    #[test]
    fn json_contains_all_metric_names() {
        let snap = TelemetrySnapshot::empty();
        let json = snap.to_json();
        for &id in MetricId::ALL {
            assert!(json.contains(id.name()), "missing {}", id.name());
        }
    }

    #[test]
    fn text_render_groups_namespaces() {
        let snap = TelemetrySnapshot::empty();
        let text = snap.render_text();
        for ns in ["[hpm]", "[memsim]", "[gc]", "[vm]", "[core]"] {
            assert!(text.contains(ns), "missing {ns}");
        }
    }

    #[test]
    fn json_includes_histograms_and_decisions() {
        use crate::provenance::{DecisionRecord, FeedbackChain, SampleWitness};

        let mut snap = TelemetrySnapshot::empty();
        snap.hists[HistogramId::GcMinorPauseCycles as usize].buckets[3] = 2;
        snap.hists[HistogramId::GcMinorPauseCycles as usize].sum = 13;
        snap.decisions.push(DecisionRecord {
            cycle: 500,
            class: 1,
            field: u32::MAX,
            action: "reverted",
            field_misses: 0,
            threshold: 4,
            gap_bytes: 0,
            witnesses: vec![SampleWitness {
                pc: 7,
                method: 2,
                bytecode_index: 9,
                cycle: 100,
            }],
            feedback: Some(FeedbackChain {
                baseline_rate: 1.0,
                observed_rate: 2.5,
                tolerance: 1.5,
                regressing_periods: 3,
            }),
        });
        let json = snap.to_json();
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"gc.minor_pause_cycles\""));
        assert!(json.contains("\"le\": \"8\""));
        assert!(json.contains("\"field\": \"*\""));
        assert!(json.contains("\"observed_rate\": 2.5"));
        assert!(json.contains("\"bytecode_index\": 9"));
        // The decisions diff keeps only records after the cut.
        let d = snap.diff(&TelemetrySnapshot::empty());
        assert_eq!(d.decisions.len(), 1);
        assert_eq!(d.hists[HistogramId::GcMinorPauseCycles as usize].count(), 2);
    }
}
