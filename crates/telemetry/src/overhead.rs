//! Overhead accountant: splits a run's total simulated cycles into
//! exclusive buckets so the cost of monitoring infrastructure can be
//! stated as a percentage, the way the paper reports its < 1 %
//! overhead claim.
//!
//! Buckets are exclusive and sum to `total`:
//! - `mutator` — application bytecode execution (the remainder),
//! - `gc` — collections,
//! - `sampling_microcode` — the PEBS-style unit writing sample
//!   records (the paper's "microcode cost"),
//! - `poll_drain` — the collector thread draining the kernel buffer
//!   and the monitor attributing samples,
//! - `recompilation` — tier-up compilations.

use crate::json::{number, JsonWriter};

/// Exclusive cycle buckets for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBuckets {
    pub total: u64,
    pub mutator: u64,
    pub gc: u64,
    pub sampling_microcode: u64,
    pub poll_drain: u64,
    pub recompilation: u64,
}

impl CycleBuckets {
    /// Build buckets from a run's aggregate numbers. `monitor_cycles`
    /// is the combined cost charged by the sampling unit and the
    /// drain/attribution path; `sampling_cycles` is the sampling-unit
    /// share of it. The mutator bucket is the saturating remainder, so
    /// the buckets always partition `total`.
    pub fn from_run(
        total: u64,
        gc: u64,
        sampling_cycles: u64,
        monitor_cycles: u64,
        recompilation: u64,
    ) -> Self {
        let sampling_microcode = sampling_cycles.min(monitor_cycles);
        let poll_drain = monitor_cycles - sampling_microcode;
        let overhead = gc + sampling_microcode + poll_drain + recompilation;
        Self {
            total,
            mutator: total.saturating_sub(overhead),
            gc,
            sampling_microcode,
            poll_drain,
            recompilation,
        }
    }

    /// Cycles spent on the monitoring infrastructure itself: sampling
    /// microcode + poll/drain + recompilation. GC is *not* monitoring
    /// overhead — it runs with or without the HPM system.
    pub fn monitoring_cycles(&self) -> u64 {
        self.sampling_microcode + self.poll_drain + self.recompilation
    }

    /// Monitoring overhead as a percentage of total cycles.
    pub fn monitoring_overhead_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.monitoring_cycles() as f64 / self.total as f64 * 100.0
        }
    }

    /// Share of one bucket as a percentage of total cycles.
    pub fn pct(&self, bucket: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            bucket as f64 / self.total as f64 * 100.0
        }
    }

    /// Write the buckets as a JSON object under the given writer
    /// (value position).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.object_value();
        w.field_u64("total", self.total);
        w.field_u64("mutator", self.mutator);
        w.field_u64("gc", self.gc);
        w.field_u64("sampling_microcode", self.sampling_microcode);
        w.field_u64("poll_drain", self.poll_drain);
        w.field_u64("recompilation", self.recompilation);
        w.field_f64("monitoring_overhead_pct", self.monitoring_overhead_pct());
        w.end_object();
    }

    /// Human-readable bucket table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("cycle buckets\n");
        let rows = [
            ("mutator", self.mutator),
            ("gc", self.gc),
            ("sampling_microcode", self.sampling_microcode),
            ("poll_drain", self.poll_drain),
            ("recompilation", self.recompilation),
        ];
        for (name, cycles) in rows {
            out.push_str(&format!(
                "    {:<20} {:>14}  ({:>6}%)\n",
                name,
                cycles,
                number(self.pct(cycles))
            ));
        }
        out.push_str(&format!("    {:<20} {:>14}\n", "total", self.total));
        out.push_str(&format!(
            "  monitoring overhead: {}% of total cycles\n",
            number(self.monitoring_overhead_pct())
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_total() {
        let b = CycleBuckets::from_run(1_000_000, 120_000, 5_000, 12_000, 3_000);
        assert_eq!(
            b.mutator + b.gc + b.sampling_microcode + b.poll_drain + b.recompilation,
            b.total
        );
        assert_eq!(b.sampling_microcode, 5_000);
        assert_eq!(b.poll_drain, 7_000);
        assert_eq!(b.monitoring_cycles(), 15_000);
        assert!((b.monitoring_overhead_pct() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_total_is_zero_pct() {
        let b = CycleBuckets::default();
        assert_eq!(b.monitoring_overhead_pct(), 0.0);
    }
}
