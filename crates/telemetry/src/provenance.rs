//! Decision provenance: a bounded audit trail of co-allocation
//! decisions and the causal chain that produced each one.
//!
//! The monitoring pipeline is only trustworthy if every decision can
//! be explained after the fact: which sampled PCs resolved (through
//! the machine-code maps) to which `(method, bytecode)` sites, which
//! reference-field miss counters those samples incremented, what
//! threshold the counter crossed, and what the policy then did. The
//! [`ProvenanceLog`] records exactly that chain per decision —
//! installed, pinned, warm-started, or reverted — with reverts
//! additionally carrying the feedback evidence (baseline vs. observed
//! miss rate and the regressing-period streak).
//!
//! Everything here is bounded: the decision log is a drop-oldest ring
//! with a dropped counter, witness samples are capped per field, and
//! the witness map is capped in the number of fields it tracks. Like
//! all telemetry, recording provenance never advances the simulated
//! clock.

use std::collections::{BTreeMap, VecDeque};

/// Witness samples retained per field (the most recent ones).
pub const WITNESSES_PER_FIELD: usize = 4;

/// Maximum distinct fields the witness store tracks; beyond this,
/// samples for new fields are counted but not retained.
pub const MAX_WITNESSED_FIELDS: usize = 512;

/// Default bound on retained decision records.
pub const DEFAULT_PROVENANCE_CAPACITY: usize = 256;

/// One attributed sample, as evidence for a later decision: the
/// sampled PC, the `(method, bytecode)` site the MC map resolved it
/// to, and the simulated cycle of the sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleWitness {
    /// Machine PC the PEBS unit captured.
    pub pc: u64,
    /// Method the PC resolved to.
    pub method: u32,
    /// Bytecode index within the method.
    pub bytecode_index: u32,
    /// Simulated cycle of the sampled access.
    pub cycle: u64,
}

/// The feedback evidence attached to a revert decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackChain {
    /// Pre-decision miss rate (sampled misses per megacycle).
    pub baseline_rate: f64,
    /// Miss rate observed in the period that triggered the revert.
    pub observed_rate: f64,
    /// A period regresses when its rate exceeds `baseline × tolerance`.
    pub tolerance: f64,
    /// Consecutive regressing periods that accumulated to the revert.
    pub regressing_periods: u64,
}

/// One decision with its full causal chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Simulated cycle of the policy action.
    pub cycle: u64,
    /// Class the decision concerns.
    pub class: u32,
    /// Field the decision co-allocates through; `u32::MAX` when the
    /// action is class-wide (pins and reverts).
    pub field: u32,
    /// `"enabled"`, `"pinned"`, `"reverted"`, or `"warm_start"`.
    pub action: &'static str,
    /// The field's cumulative sampled-miss counter at decision time.
    pub field_misses: u64,
    /// The policy's miss threshold in force.
    pub threshold: u64,
    /// Padding of a pinned placement (0 otherwise).
    pub gap_bytes: u64,
    /// Recent witness samples for the field (empty for class-wide
    /// actions or when no sample was retained).
    pub witnesses: Vec<SampleWitness>,
    /// Feedback evidence (reverts only).
    pub feedback: Option<FeedbackChain>,
}

#[derive(Debug)]
struct FieldWitnesses {
    first_cycle: u64,
    recent: VecDeque<SampleWitness>,
}

/// Bounded store of decision records plus the per-field witness
/// samples they draw from.
#[derive(Debug)]
pub struct ProvenanceLog {
    records: VecDeque<DecisionRecord>,
    capacity: usize,
    dropped: u64,
    witnesses: BTreeMap<u32, FieldWitnesses>,
}

impl ProvenanceLog {
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ProvenanceLog {
            records: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            dropped: 0,
            witnesses: BTreeMap::new(),
        }
    }

    /// Record an attributed sample as potential evidence for a later
    /// decision on `field`.
    pub fn witness(&mut self, field: u32, w: SampleWitness) {
        if !self.witnesses.contains_key(&field) && self.witnesses.len() >= MAX_WITNESSED_FIELDS {
            return;
        }
        let e = self
            .witnesses
            .entry(field)
            .or_insert_with(|| FieldWitnesses {
                first_cycle: w.cycle,
                recent: VecDeque::with_capacity(WITNESSES_PER_FIELD),
            });
        if e.recent.len() == WITNESSES_PER_FIELD {
            e.recent.pop_front();
        }
        e.recent.push_back(w);
    }

    /// Cycle of the first attributed sample for `field` (for
    /// sample-to-decision latency).
    #[must_use]
    pub fn first_witness_cycle(&self, field: u32) -> Option<u64> {
        self.witnesses.get(&field).map(|e| e.first_cycle)
    }

    /// The retained witness samples for `field`, oldest first.
    #[must_use]
    pub fn witnesses_for(&self, field: u32) -> Vec<SampleWitness> {
        self.witnesses
            .get(&field)
            .map(|e| e.recent.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Append a decision record, attaching the field's retained
    /// witnesses if the record carries none. Drop-oldest when full.
    pub fn push(&mut self, mut record: DecisionRecord) {
        if record.witnesses.is_empty() && record.field != u32::MAX {
            record.witnesses = self.witnesses_for(record.field);
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records lost to wraparound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness(cycle: u64) -> SampleWitness {
        SampleWitness {
            pc: 0x4000_0000 + cycle,
            method: 1,
            bytecode_index: 7,
            cycle,
        }
    }

    fn record(cycle: u64, field: u32) -> DecisionRecord {
        DecisionRecord {
            cycle,
            class: 0,
            field,
            action: "enabled",
            field_misses: 10,
            threshold: 4,
            gap_bytes: 0,
            witnesses: Vec::new(),
            feedback: None,
        }
    }

    #[test]
    fn witnesses_are_bounded_and_keep_first_cycle() {
        let mut log = ProvenanceLog::new(8);
        for c in 0..10 {
            log.witness(3, witness(c));
        }
        assert_eq!(log.first_witness_cycle(3), Some(0));
        let w = log.witnesses_for(3);
        assert_eq!(w.len(), WITNESSES_PER_FIELD);
        assert_eq!(w.last().unwrap().cycle, 9);
        assert_eq!(log.first_witness_cycle(99), None);
    }

    #[test]
    fn push_attaches_witnesses_and_drops_oldest() {
        let mut log = ProvenanceLog::new(2);
        log.witness(3, witness(5));
        log.push(record(100, 3));
        assert_eq!(log.records()[0].witnesses.len(), 1);
        log.push(record(200, u32::MAX));
        log.push(record(300, 3));
        assert_eq!(log.dropped(), 1);
        let r = log.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].cycle, 200);
        assert!(r[0].witnesses.is_empty(), "class-wide records get none");
    }

    #[test]
    fn field_cap_stops_retaining_new_fields() {
        let mut log = ProvenanceLog::new(4);
        for f in 0..(MAX_WITNESSED_FIELDS as u32 + 10) {
            log.witness(f, witness(u64::from(f)));
        }
        assert_eq!(log.witnesses_for(0).len(), 1);
        assert!(log
            .witnesses_for(MAX_WITNESSED_FIELDS as u32 + 5)
            .is_empty());
    }
}
