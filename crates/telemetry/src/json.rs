//! Minimal hand-rolled JSON writer.
//!
//! The workspace is dependency-free, so exports cannot use serde. This
//! module provides the few primitives the snapshot and report code
//! need: a string escaper and a builder that tracks comma placement in
//! nested objects/arrays. Output is deterministic (insertion order)
//! and pretty-printed with two-space indents.

/// Escape a string per RFC 8259 and wrap it in quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so it is valid JSON (no NaN/inf) and stable.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Enough precision for percentages and rates; trailing zeros
        // trimmed for readability.
        let s = format!("{v:.6}");
        let trimmed = s.trim_end_matches('0').trim_end_matches('.');
        if trimmed.is_empty() {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    } else {
        "null".to_string()
    }
}

/// Incremental writer for nested JSON objects and arrays.
pub struct JsonWriter {
    out: String,
    // One entry per open container: true once a first element was
    // written (so the next element needs a leading comma).
    stack: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    pub fn new() -> Self {
        Self {
            out: String::new(),
            stack: Vec::new(),
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    fn element(&mut self) {
        if let Some(seen) = self.stack.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
            self.out.push('\n');
            self.indent();
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.element();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        let seen = self.stack.pop().unwrap_or(false);
        if seen {
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.element();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        let seen = self.stack.pop().unwrap_or(false);
        if seen {
            self.out.push('\n');
            self.indent();
        }
        self.out.push(']');
        self
    }

    /// Write `"key":` and leave the cursor expecting a value; pair with
    /// the `*_value` methods or a `begin_*` call.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.element();
        self.out.push_str(&escape(key));
        self.out.push_str(": ");
        // The value that follows is written through the raw `*_value`
        // paths, which never emit their own comma/newline.
        if let Some(seen) = self.stack.last_mut() {
            *seen = true;
        }
        self
    }

    pub fn u64_value(&mut self, v: u64) -> &mut Self {
        self.out.push_str(&v.to_string());
        self
    }

    pub fn f64_value(&mut self, v: f64) -> &mut Self {
        self.out.push_str(&number(v));
        self
    }

    pub fn bool_value(&mut self, v: bool) -> &mut Self {
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn str_value(&mut self, v: &str) -> &mut Self {
        self.out.push_str(&escape(v));
        self
    }

    /// Open an object in value position (after [`JsonWriter::key`]).
    pub fn object_value(&mut self) -> &mut Self {
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Open an array in value position (after [`JsonWriter::key`]).
    pub fn array_value(&mut self) -> &mut Self {
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Shorthand: `"key": <u64>`.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key).u64_value(v)
    }

    /// Shorthand: `"key": <f64>`.
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key).f64_value(v)
    }

    /// Shorthand: `"key": "<str>"`.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key).str_value(v)
    }

    /// Shorthand: `"key": <bool>`.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key).bool_value(v)
    }

    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON writer");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_trim_zeros() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.key("b").object_value();
        w.field_str("c", "x");
        w.end_object();
        w.key("d").array_value();
        w.begin_object();
        w.field_bool("e", true);
        w.end_object();
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert!(s.contains("\"a\": 1,"));
        assert!(s.contains("\"c\": \"x\""));
        assert!(s.contains("\"e\": true"));
        // Balanced braces/brackets.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
