//! Prometheus text exposition (version 0.0.4) for a telemetry
//! snapshot.
//!
//! The exporter renders every declared metric and histogram — zeros
//! included — in declaration order with deterministic label ordering,
//! so two expositions of the same snapshot are byte-identical and CI
//! can diff them. Counters get the conventional `_total` suffix,
//! gauges are exported bare, and histograms expand into cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`.
//!
//! Dotted workspace names are mangled into the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by prefixing `hpmopt_` and mapping
//! every invalid character to `_`: `memsim.l1.misses` becomes
//! `hpmopt_memsim_l1_misses_total`.

use crate::hist::{bucket_le, HistogramId, HIST_BUCKETS};
use crate::metrics::{MetricId, MetricKind};
use crate::snapshot::TelemetrySnapshot;

/// Mangle a dotted workspace metric name into a valid Prometheus
/// metric name with the workspace prefix.
#[must_use]
pub fn mangle_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 7);
    out.push_str("hpmopt_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

fn label_block_with_le(labels: &[(&str, &str)], le: &str) -> String {
    let mut all: Vec<(&str, &str)> = labels.to_vec();
    all.push(("le", le));
    label_block(&all)
}

/// Render a snapshot in Prometheus text-exposition format.
///
/// `labels` are constant labels applied to every series (e.g.
/// `[("workload", "db")]`); pass `&[]` for none. Output is fully
/// deterministic: declaration order, every metric emitted even at
/// zero, and a trailing `hpmopt_telemetry_at_cycle` gauge stamping
/// the snapshot instant.
#[must_use]
pub fn render(snapshot: &TelemetrySnapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let block = label_block(labels);

    for &id in MetricId::ALL {
        let (name, kind_str) = match id.kind() {
            MetricKind::Counter => (format!("{}_total", mangle_name(id.name())), "counter"),
            MetricKind::Gauge => (mangle_name(id.name()), "gauge"),
        };
        out.push_str(&format!("# HELP {name} hpmopt metric {}\n", id.name()));
        out.push_str(&format!("# TYPE {name} {kind_str}\n"));
        out.push_str(&format!("{name}{block} {}\n", snapshot.get(id)));
    }

    for &id in HistogramId::ALL {
        let name = mangle_name(id.name());
        let hist = &snapshot.hists[id as usize];
        out.push_str(&format!("# HELP {name} hpmopt histogram {}\n", id.name()));
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets.iter().enumerate() {
            cumulative += count;
            // Emit the buckets that carry information: every bucket
            // with observations, plus the mandatory +Inf terminator.
            // Skipping the long runs of empty buckets keeps the
            // exposition readable and is still valid (buckets are
            // cumulative).
            if count > 0 || i == HIST_BUCKETS - 1 {
                let lb = label_block_with_le(labels, &bucket_le(i));
                out.push_str(&format!("{name}_bucket{lb} {cumulative}\n"));
            }
        }
        out.push_str(&format!("{name}_sum{block} {}\n", hist.sum));
        out.push_str(&format!("{name}_count{block} {}\n", hist.count()));
    }

    let at = mangle_name("telemetry.at_cycle");
    out.push_str(&format!(
        "# HELP {at} simulated cycle at which the snapshot was taken\n"
    ));
    out.push_str(&format!("# TYPE {at} gauge\n"));
    out.push_str(&format!("{at}{block} {}\n", snapshot.at_cycle));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let t = Telemetry::enabled(8);
        t.observe(HistogramId::GcMinorPauseCycles, 1); // bucket le=1
        t.observe(HistogramId::GcMinorPauseCycles, 2); // bucket le=2
        t.observe(HistogramId::GcMinorPauseCycles, 2);
        t.observe(HistogramId::GcMinorPauseCycles, 1_000_000_000); // deep bucket
        let text = render(&t.snapshot(10), &[]);
        let name = mangle_name("gc.minor_pause_cycles");
        let bucket = |le: &str| -> u64 {
            let needle = format!("{name}_bucket{{le=\"{le}\"}} ");
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("no bucket le={le}"));
            line.rsplit(' ').next().unwrap().parse().unwrap()
        };
        assert_eq!(bucket("1"), 1);
        assert_eq!(bucket("2"), 3);
        assert_eq!(bucket("1073741824"), 4);
        assert_eq!(bucket("+Inf"), 4);
        assert!(text.contains(&format!("{name}_count 4\n")));
        assert!(text.contains(&format!("{name}_sum 1000000005\n")));
    }

    #[test]
    fn mangles_dotted_names() {
        assert_eq!(mangle_name("memsim.l1.misses"), "hpmopt_memsim_l1_misses");
        assert_eq!(mangle_name("gc.minor-pause"), "hpmopt_gc_minor_pause");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
    }

    #[test]
    fn renders_every_metric_with_labels() {
        let snap = TelemetrySnapshot::empty();
        let text = render(&snap, &[("workload", "db")]);
        for &id in MetricId::ALL {
            assert!(
                text.contains(&mangle_name(id.name())),
                "missing {}",
                id.name()
            );
        }
        assert!(text.contains(r#"{workload="db"}"#));
        assert!(text.contains(r#"workload="db",le="+Inf""#));
        assert!(text.ends_with('\n'));
    }
}
