//! Static metric registry.
//!
//! Every metric the workspace exports is declared once in the
//! [`metrics!`] table below with a stable dotted name. The registry is
//! a fixed array of atomics indexed by [`MetricId`], so recording a
//! metric is a single relaxed atomic op with no hashing or allocation
//! on the hot path.
//!
//! Namespaces mirror the crate layout:
//! `hpm.*` (sampling unit), `memsim.*` (cache/TLB hierarchy),
//! `gc.*` (collector), `vm.*` (compiler tiers), `core.*` (attribution
//! and the co-allocation policy), `profile.*` (the persistent profile
//! repository and warm-start outcomes).

use std::sync::atomic::{AtomicU64, Ordering};

/// Whether a metric accumulates (`Counter`) or tracks a latest value
/// (`Gauge`). The distinction matters for [`snapshot diffs`]: counters
/// are subtracted across an interval, gauges keep the later reading.
///
/// [`snapshot diffs`]: crate::snapshot::TelemetrySnapshot::diff
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
}

macro_rules! metrics {
    ($($variant:ident => ($name:literal, $kind:ident);)*) => {
        /// Identifier of one workspace metric; indexes the registry array.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum MetricId {
            $($variant,)*
        }

        impl MetricId {
            /// Every metric, in declaration (and export) order.
            pub const ALL: &'static [MetricId] = &[$(MetricId::$variant,)*];

            /// Number of declared metrics.
            pub const COUNT: usize = Self::ALL.len();

            /// Stable dotted export name, e.g. `"memsim.l1.misses"`.
            pub fn name(self) -> &'static str {
                match self {
                    $(MetricId::$variant => $name,)*
                }
            }

            /// Counter or gauge semantics.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(MetricId::$variant => MetricKind::$kind,)*
                }
            }
        }
    };
}

metrics! {
    // hpm.*: the PEBS-style sampling unit and its collector thread.
    HpmEvents => ("hpm.events", Counter);
    HpmSamplesGenerated => ("hpm.samples_generated", Counter);
    HpmSamplesDropped => ("hpm.samples_dropped", Counter);
    HpmSamplesDrained => ("hpm.samples_drained", Counter);
    HpmPolls => ("hpm.polls", Counter);
    HpmBufferOverflows => ("hpm.buffer_overflows", Counter);
    HpmPollPeriodMs => ("hpm.poll_period_ms", Gauge);
    HpmSamplingInterval => ("hpm.sampling_interval", Gauge);

    // memsim.*: per-level cache and TLB traffic.
    MemsimL1Hits => ("memsim.l1.hits", Counter);
    MemsimL1Misses => ("memsim.l1.misses", Counter);
    MemsimL1Evictions => ("memsim.l1.evictions", Counter);
    MemsimL2Hits => ("memsim.l2.hits", Counter);
    MemsimL2Misses => ("memsim.l2.misses", Counter);
    MemsimL2Evictions => ("memsim.l2.evictions", Counter);
    MemsimDtlbHits => ("memsim.dtlb.hits", Counter);
    MemsimDtlbMisses => ("memsim.dtlb.misses", Counter);
    MemsimDtlbEvictions => ("memsim.dtlb.evictions", Counter);

    // gc.*: collections and the object-layout policy's effect.
    GcMinorCollections => ("gc.minor_collections", Counter);
    GcMajorCollections => ("gc.major_collections", Counter);
    GcPromotedBytes => ("gc.promoted_bytes", Counter);
    GcCoallocatedBytes => ("gc.coallocated_bytes", Counter);

    // vm.*: compilations per tier and their simulated cost.
    VmCompilesBaseline => ("vm.compiles.baseline", Counter);
    VmCompilesOpt => ("vm.compiles.opt", Counter);
    VmCompileCycles => ("vm.compile_cycles", Gauge);

    // jit.*: the tiered compilation pipeline and its bounded code cache.
    JitCompilesBaseline => ("jit.compiles.baseline", Counter);
    JitCompilesOpt => ("jit.compiles.opt", Counter);
    JitCompilesRegion => ("jit.compiles.region", Counter);
    JitDeopts => ("jit.deopts", Counter);
    JitEvictions => ("jit.evictions", Counter);
    JitCodeFrees => ("jit.code_frees", Counter);
    JitStaleSamples => ("jit.stale_samples", Counter);
    JitCacheBytes => ("jit.cache_bytes", Gauge);
    JitCacheCapacityBytes => ("jit.cache_capacity_bytes", Gauge);
    JitCodeEpoch => ("jit.code_epoch", Gauge);

    // core.*: sample attribution outcomes and policy decisions.
    CoreSamplesAttributed => ("core.samples.attributed", Counter);
    CoreSamplesUninteresting => ("core.samples.uninteresting", Counter);
    CoreSamplesUnmapped => ("core.samples.unmapped", Counter);
    CoreSamplesForeign => ("core.samples.foreign", Counter);
    CoreBatches => ("core.batches", Counter);
    CorePolicyEnabled => ("core.policy.enabled", Counter);
    CorePolicyPinned => ("core.policy.pinned", Counter);
    CorePolicyReverted => ("core.policy.reverted", Counter);
    CorePolicyWarmStarted => ("core.policy.warm_started", Counter);
    CorePhaseChanges => ("core.phase_changes", Counter);

    // profile.*: the persistent profile repository (load outcomes at
    // startup, save outcomes at shutdown).
    ProfileWarmStarts => ("profile.warm_starts", Counter);
    ProfileColdStarts => ("profile.cold_starts", Counter);
    ProfileLoadMissing => ("profile.load.missing", Counter);
    ProfileLoadCorrupt => ("profile.load.corrupt", Counter);
    ProfileLoadMismatch => ("profile.load.mismatch", Counter);
    ProfileSeededFields => ("profile.seeded_fields", Counter);
    ProfileSeededDecisions => ("profile.seeded_decisions", Counter);
    ProfileSaves => ("profile.saves", Counter);
    ProfileSaveErrors => ("profile.save_errors", Counter);
    ProfileRuns => ("profile.runs", Gauge);

    // serve.*: the multi-tenant VM service — job lifecycle outcomes,
    // fleet warm-start traffic against the shared profile repository,
    // and live occupancy.
    ServeJobsSubmitted => ("serve.jobs.submitted", Counter);
    ServeJobsCompleted => ("serve.jobs.completed", Counter);
    ServeJobsRejected => ("serve.jobs.rejected", Counter);
    ServeJobsKilled => ("serve.jobs.killed", Counter);
    ServeJobsFailed => ("serve.jobs.failed", Counter);
    ServeWarmJobs => ("serve.jobs.warm", Counter);
    ServeColdJobs => ("serve.jobs.cold", Counter);
    ServeRepoCheckouts => ("serve.repo.checkouts", Counter);
    ServeRepoMerges => ("serve.repo.merges", Counter);
    ServeRepoProfiles => ("serve.repo.profiles", Gauge);
    ServeRepoEvictions => ("serve.repo_evictions", Counter);
    ServeSteals => ("serve.steals", Counter);
    ServeQueueDepth => ("serve.queue_depth", Gauge);
    ServeLiveJobs => ("serve.live_jobs", Gauge);
    ServeTenants => ("serve.tenants", Gauge);

    // telemetry.*: the telemetry layer watching itself.
    TelemetryTraceDropped => ("telemetry.trace_dropped", Counter);
}

/// Fixed-size table of atomics, one per [`MetricId`]. All operations
/// use relaxed ordering: metrics are monotonic diagnostics, not
/// synchronization.
pub struct MetricsRegistry {
    values: [AtomicU64; MetricId::COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n` to a counter (or, degenerately, a gauge).
    pub fn add(&self, id: MetricId, n: u64) {
        self.values[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite a gauge with its latest reading.
    pub fn set(&self, id: MetricId, value: u64) {
        self.values[id as usize].store(value, Ordering::Relaxed);
    }

    /// Raise a gauge to `value` if the current reading is lower; used
    /// for gauges synced from monotonic externally-kept stats.
    pub fn set_max(&self, id: MetricId, value: u64) {
        self.values[id as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Current reading of one metric.
    pub fn get(&self, id: MetricId) -> u64 {
        self.values[id as usize].load(Ordering::Relaxed)
    }

    /// Copy out every metric in declaration order.
    pub fn read_all(&self) -> Vec<u64> {
        self.values
            .iter()
            .map(|v| v.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_namespaced() {
        let mut seen = std::collections::BTreeSet::new();
        for &id in MetricId::ALL {
            assert!(seen.insert(id.name()), "duplicate metric {}", id.name());
            let ns = id.name().split('.').next().unwrap();
            assert!(
                matches!(
                    ns,
                    "hpm"
                        | "memsim"
                        | "gc"
                        | "vm"
                        | "jit"
                        | "core"
                        | "profile"
                        | "serve"
                        | "telemetry"
                ),
                "unknown namespace in {}",
                id.name()
            );
        }
        assert_eq!(seen.len(), MetricId::COUNT);
    }

    #[test]
    fn registry_add_set_get() {
        let r = MetricsRegistry::new();
        r.add(MetricId::HpmEvents, 3);
        r.add(MetricId::HpmEvents, 4);
        assert_eq!(r.get(MetricId::HpmEvents), 7);
        r.set(MetricId::HpmPollPeriodMs, 40);
        r.set(MetricId::HpmPollPeriodMs, 20);
        assert_eq!(r.get(MetricId::HpmPollPeriodMs), 20);
        r.set_max(MetricId::VmCompileCycles, 10);
        r.set_max(MetricId::VmCompileCycles, 5);
        assert_eq!(r.get(MetricId::VmCompileCycles), 10);
    }
}
