//! Log2-bucket histograms.
//!
//! Histograms complement the scalar counters/gauges of
//! [`crate::metrics`]: each observation lands in the bucket whose
//! upper bound is the smallest power of two at or above the value
//! (ceiling log2), so a 64-bucket table covers the full `u64` range
//! with one relaxed atomic increment per observation and no
//! allocation. Bucket 63 doubles as the `+Inf` bucket.
//!
//! Like every other telemetry sink, histograms observe the simulated
//! clock but never advance it: recording an observation costs zero
//! simulated cycles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets per histogram. Bucket `i < 63` holds values `v`
/// with `le(i-1) < v <= le(i)` where `le(i) = 2^i`; bucket 63 holds
/// everything larger (`+Inf`).
pub const HIST_BUCKETS: usize = 64;

macro_rules! histograms {
    ($($variant:ident => $name:literal;)*) => {
        /// Identifier of one workspace histogram; indexes the table.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum HistogramId {
            $($variant,)*
        }

        impl HistogramId {
            /// Every histogram, in declaration (and export) order.
            pub const ALL: &'static [HistogramId] = &[$(HistogramId::$variant,)*];

            /// Number of declared histograms.
            pub const COUNT: usize = Self::ALL.len();

            /// Stable dotted export name, e.g. `"gc.minor_pause_cycles"`.
            pub fn name(self) -> &'static str {
                match self {
                    $(HistogramId::$variant => $name,)*
                }
            }
        }
    };
}

histograms! {
    // hpm.*: per-poll drain sizes.
    HpmPollBatchSamples => "hpm.poll_batch_samples";

    // gc.*: per-collection pause durations (simulated cycles).
    GcMinorPauseCycles => "gc.minor_pause_cycles";
    GcMajorPauseCycles => "gc.major_pause_cycles";

    // vm.*: per-compilation cost (simulated cycles).
    VmCompileCostCycles => "vm.compile_cost_cycles";

    // jit.*: per-compilation cost by the tiered pipeline (all tiers;
    // the tier split lives in the jit.compiles.* counters).
    JitCompileCostCycles => "jit.compile_cost_cycles";

    // core.*: interpreter cycles between collector-thread polls, and
    // the latency from a field's first attributed sample to the policy
    // decision it triggered.
    CorePollGapCycles => "core.poll_gap_cycles";
    CoreDecisionLatencyCycles => "core.decision_latency_cycles";

    // serve.*: per-job totals aggregated by the service — simulated
    // execution length and cycles-to-first-decision (the fleet
    // warm-start payoff metric, split by start temperature).
    ServeJobCycles => "serve.job_cycles";
    ServeWarmFirstDecisionCycles => "serve.warm_first_decision_cycles";
    ServeColdFirstDecisionCycles => "serve.cold_first_decision_cycles";
    ServeQueueWaitCycles => "serve.queue_wait_cycles";
    ServeServiceCycles => "serve.service_cycles";
}

/// Bucket index for one observed value (ceiling log2, saturated into
/// the final `+Inf` bucket).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, rendered for exports
/// (`"+Inf"` for the last bucket).
#[must_use]
pub fn bucket_le(i: usize) -> String {
    if i >= HIST_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        (1u128 << i).to_string()
    }
}

struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Fixed table of histograms, one per [`HistogramId`]. Relaxed
/// ordering throughout: histograms are diagnostics, not
/// synchronization.
pub struct HistogramRegistry {
    hists: Vec<Hist>,
}

impl Default for HistogramRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramRegistry {
    #[must_use]
    pub fn new() -> Self {
        HistogramRegistry {
            hists: (0..HistogramId::COUNT).map(|_| Hist::new()).collect(),
        }
    }

    /// Record one observation.
    pub fn observe(&self, id: HistogramId, value: u64) {
        let h = &self.hists[id as usize];
        h.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum that pegs at u64::MAX is better than a
        // wrapped one silently lying.
        let mut cur = h.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match h
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add `count` observations directly into bucket `i` without
    /// touching the sum; used when absorbing a frozen snapshot whose
    /// bucket placement is already exact.
    pub fn absorb_bucket(&self, id: HistogramId, i: usize, count: u64) {
        self.hists[id as usize].buckets[i].fetch_add(count, Ordering::Relaxed);
    }

    /// Add a frozen snapshot's observed-value sum (saturating).
    pub fn absorb_sum(&self, id: HistogramId, sum: u64) {
        let h = &self.hists[id as usize];
        let mut cur = h.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(sum);
            match h
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Copy out every histogram in declaration order.
    #[must_use]
    pub fn read_all(&self) -> Vec<HistogramSnapshot> {
        self.hists
            .iter()
            .map(|h| HistogramSnapshot {
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Frozen copy of one histogram: per-bucket counts (not cumulative)
/// plus the sum of observed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw (non-cumulative) count per bucket, aligned with
    /// [`bucket_le`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An all-zero histogram.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Per-bucket and sum delta against an earlier snapshot
    /// (saturating).
    #[must_use]
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceiling_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_render() {
        assert_eq!(bucket_le(0), "1");
        assert_eq!(bucket_le(10), "1024");
        assert_eq!(bucket_le(HIST_BUCKETS - 1), "+Inf");
    }

    #[test]
    fn observe_accumulates_count_and_sum() {
        let r = HistogramRegistry::new();
        r.observe(HistogramId::GcMinorPauseCycles, 100);
        r.observe(HistogramId::GcMinorPauseCycles, 100);
        r.observe(HistogramId::GcMinorPauseCycles, 5000);
        let snap = &r.read_all()[HistogramId::GcMinorPauseCycles as usize];
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum, 5200);
        assert_eq!(snap.buckets[bucket_index(100)], 2);
        assert_eq!(snap.buckets[bucket_index(5000)], 1);
        let other = &r.read_all()[HistogramId::GcMajorPauseCycles as usize];
        assert_eq!(other.count(), 0);
    }

    #[test]
    fn names_are_unique_and_namespaced() {
        let mut seen = std::collections::BTreeSet::new();
        for &id in HistogramId::ALL {
            assert!(seen.insert(id.name()), "duplicate histogram {}", id.name());
            let ns = id.name().split('.').next().unwrap();
            assert!(
                matches!(
                    ns,
                    "hpm"
                        | "memsim"
                        | "gc"
                        | "vm"
                        | "jit"
                        | "core"
                        | "profile"
                        | "serve"
                        | "telemetry"
                ),
                "unknown namespace in {}",
                id.name()
            );
        }
    }

    #[test]
    fn diff_subtracts_buckets() {
        let r = HistogramRegistry::new();
        r.observe(HistogramId::CorePollGapCycles, 8);
        let early = r.read_all()[HistogramId::CorePollGapCycles as usize].clone();
        r.observe(HistogramId::CorePollGapCycles, 8);
        r.observe(HistogramId::CorePollGapCycles, 9);
        let late = r.read_all()[HistogramId::CorePollGapCycles as usize].clone();
        let d = late.diff(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 17);
    }
}
