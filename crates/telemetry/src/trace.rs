//! Bounded structured event trace.
//!
//! A [`TraceRing`] holds the most recent `capacity` events; when full,
//! the oldest event is discarded and a dropped-events counter is
//! incremented so consumers can tell the record is partial. Events are
//! typed ([`TraceKind`]) and stamped with the *simulated* cycle clock,
//! never wall time, so traces are deterministic across runs.

use std::collections::VecDeque;

/// What happened. Payloads carry the few fields a consumer needs to
/// interpret the event without re-deriving state from metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The collector thread drained the kernel sample buffer.
    PollCompleted { samples: u64, attributed: u64 },
    /// The kernel buffer filled and samples were lost before the drain.
    BufferOverflow { dropped: u64 },
    /// A collection finished; `promoted_bytes` is this collection's
    /// survivor volume.
    GcCollection { major: bool, promoted_bytes: u64 },
    /// A method moved to a higher tier.
    Recompilation { method: u32, tier: &'static str },
    /// Region-tier code bailed out to the interpreter's baseline path:
    /// execution left the compiled region and the artifact was
    /// abandoned.
    Deopt { method: u32 },
    /// The bounded code cache freed a range. `evicted` distinguishes
    /// capacity eviction from replacement on recompile; `epoch` is the
    /// post-free code epoch late samples are checked against.
    CodeEviction {
        method: u32,
        tier: &'static str,
        epoch: u64,
        evicted: bool,
    },
    /// The co-allocation policy changed its mind about a (class, field).
    /// `field` is `u32::MAX` when the action carries no specific field
    /// (pins and reverts operate on the whole class).
    CoallocDecision {
        class: u32,
        field: u32,
        action: &'static str,
    },
    /// The phase detector saw the miss-rate regime shift.
    PhaseChange { miss_rate_ppm: u64 },
    /// A persisted profile warm-started this run: prior-run miss
    /// history was seeded into the monitor and co-allocation decisions
    /// were installed before the first sample arrived.
    WarmStart {
        seeded_fields: u64,
        seeded_decisions: u64,
    },
}

impl TraceKind {
    /// Stable event-type name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::PollCompleted { .. } => "poll_completed",
            TraceKind::BufferOverflow { .. } => "buffer_overflow",
            TraceKind::GcCollection { .. } => "gc_collection",
            TraceKind::Recompilation { .. } => "recompilation",
            TraceKind::Deopt { .. } => "deopt",
            TraceKind::CodeEviction { .. } => "code_eviction",
            TraceKind::CoallocDecision { .. } => "coalloc_decision",
            TraceKind::PhaseChange { .. } => "phase_change",
            TraceKind::WarmStart { .. } => "warm_start",
        }
    }
}

/// One trace entry: a simulated-clock timestamp plus the typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub cycle: u64,
    pub kind: TraceKind,
}

/// Fixed-capacity ring with drop-oldest semantics.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest entry if the ring is full.
    /// Returns `true` when an event was dropped (either the evicted
    /// one or, at zero capacity, the incoming one), so callers can
    /// account for the loss in a visible counter.
    pub fn push(&mut self, event: TraceEvent) -> bool {
        if self.capacity == 0 {
            self.dropped += 1;
            return true;
        }
        let mut evicted = false;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            evicted = true;
        }
        self.buf.push_back(event);
        evicted
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to wraparound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copy out the retained events, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: TraceKind::PollCompleted {
                samples: cycle,
                attributed: 0,
            },
        }
    }

    #[test]
    fn drop_oldest_on_wrap() {
        let mut ring = TraceRing::new(3);
        for c in 0..5 {
            let dropped = ring.push(ev(c));
            assert_eq!(dropped, c >= 3);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_everything_dropped() {
        let mut ring = TraceRing::new(0);
        assert!(ring.push(ev(1)));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
