//! Workspace-wide telemetry: a metrics registry of cheap monotonic
//! counters and gauges, log2-bucket histograms with a simulated-clock
//! span API, a bounded structured event trace, a decision-provenance
//! audit trail, snapshot diff/export (JSON and Prometheus text
//! exposition), and the cycle-bucket overhead accountant.
//!
//! The entry point is the [`Telemetry`] handle. It is clone-cheap
//! (an `Arc` internally), `Send + Sync`, and has two states:
//!
//! - [`Telemetry::enabled`] — counters land in a shared atomic
//!   registry and events in a drop-oldest ring;
//! - [`Telemetry::disabled`] — every operation early-returns on a
//!   `None`; no allocation, no atomics, no locking.
//!
//! Telemetry never charges *simulated* cycles: it observes the
//! simulation's clock but does not advance it, so enabling it cannot
//! perturb the experiment being measured.
//!
//! ```
//! use hpmopt_telemetry::{MetricId, Telemetry, TraceKind};
//!
//! let t = Telemetry::enabled(64);
//! t.incr(MetricId::HpmPolls);
//! t.record(
//!     1_000,
//!     TraceKind::PollCompleted { samples: 8, attributed: 7 },
//! );
//! let snap = t.snapshot(1_000);
//! assert_eq!(snap.get(MetricId::HpmPolls), 1);
//! assert_eq!(snap.events.len(), 1);
//!
//! let off = Telemetry::disabled();
//! off.incr(MetricId::HpmPolls); // no-op
//! assert!(!off.is_enabled());
//! ```

pub mod hist;
pub mod json;
pub mod metrics;
pub mod overhead;
pub mod prom;
pub mod provenance;
pub mod read;
pub mod snapshot;
pub mod trace;

pub use hist::{HistogramId, HistogramRegistry, HistogramSnapshot, HIST_BUCKETS};
pub use metrics::{MetricId, MetricKind, MetricsRegistry};
pub use overhead::CycleBuckets;
pub use provenance::{DecisionRecord, FeedbackChain, ProvenanceLog, SampleWitness};
pub use snapshot::TelemetrySnapshot;
pub use trace::{TraceEvent, TraceKind, TraceRing};

use provenance::DEFAULT_PROVENANCE_CAPACITY;
use std::sync::{Arc, Mutex};

/// Default number of trace events retained before drop-oldest kicks in.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

struct Inner {
    registry: MetricsRegistry,
    hists: HistogramRegistry,
    trace: Mutex<TraceRing>,
    provenance: Mutex<ProvenanceLog>,
}

/// Shared handle to the telemetry sinks. See the crate docs.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    /// The default handle is disabled, so plumbing a `Telemetry` field
    /// through existing config structs changes nothing until a caller
    /// opts in.
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// A live handle retaining up to `trace_capacity` events.
    pub fn enabled(trace_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                hists: HistogramRegistry::new(),
                trace: Mutex::new(TraceRing::new(trace_capacity)),
                provenance: Mutex::new(ProvenanceLog::new(DEFAULT_PROVENANCE_CAPACITY)),
            })),
        }
    }

    /// A no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter.
    pub fn add(&self, id: MetricId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.add(id, n);
        }
    }

    /// Increment a counter by one.
    pub fn incr(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Overwrite a gauge.
    pub fn set_gauge(&self, id: MetricId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.set(id, value);
        }
    }

    /// Raise a gauge to `value` if below it (for monotonic syncs).
    pub fn set_gauge_max(&self, id: MetricId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.set_max(id, value);
        }
    }

    /// Current value of one metric (0 when disabled).
    pub fn get(&self, id: MetricId) -> u64 {
        match &self.inner {
            Some(inner) => inner.registry.get(id),
            None => 0,
        }
    }

    /// Append a trace event stamped with the given simulated cycle.
    /// A drop-oldest eviction is surfaced through the
    /// [`MetricId::TelemetryTraceDropped`] counter.
    pub fn record(&self, cycle: u64, kind: TraceKind) {
        if let Some(inner) = &self.inner {
            let dropped = {
                let mut ring = inner.trace.lock().unwrap();
                ring.push(TraceEvent { cycle, kind })
            };
            if dropped {
                inner.registry.add(MetricId::TelemetryTraceDropped, 1);
            }
        }
    }

    /// Record one observation into a histogram.
    pub fn observe(&self, id: HistogramId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.hists.observe(id, value);
        }
    }

    /// Open a simulated-clock span against a histogram; close it with
    /// [`Span::end`] to observe the elapsed cycles. Spans read the
    /// clock the caller hands them — they never advance it.
    #[must_use]
    pub fn span_at(&self, id: HistogramId, start_cycle: u64) -> Span {
        Span {
            telemetry: self.clone(),
            id,
            start_cycle,
        }
    }

    /// Retain an attributed sample as provenance evidence for later
    /// decisions on `field`.
    pub fn witness_sample(&self, field: u32, witness: SampleWitness) {
        if let Some(inner) = &self.inner {
            inner.provenance.lock().unwrap().witness(field, witness);
        }
    }

    /// Cycle of the first witnessed sample for `field`, if any.
    pub fn first_witness_cycle(&self, field: u32) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.provenance.lock().unwrap().first_witness_cycle(field))
    }

    /// Append a decision to the provenance audit trail. Field-specific
    /// records with no witnesses attached pick up the field's retained
    /// witness samples automatically.
    pub fn record_decision(&self, record: DecisionRecord) {
        if let Some(inner) = &self.inner {
            inner.provenance.lock().unwrap().push(record);
        }
    }

    /// Fold a finished run's snapshot into this handle: counters add,
    /// gauges keep the maximum reading, and histogram buckets/sums
    /// add. This is how a fleet-level handle (the serve daemon's)
    /// aggregates the per-job telemetry of many isolated runtimes —
    /// each job records into its own handle, and the service absorbs
    /// the frozen result, so jobs never contend on shared atomics and
    /// the fleet totals stay deterministic per job set.
    pub fn absorb(&self, snap: &TelemetrySnapshot) {
        let Some(inner) = &self.inner else { return };
        for &id in MetricId::ALL {
            let v = snap.get(id);
            if v == 0 {
                continue;
            }
            match id.kind() {
                MetricKind::Counter => inner.registry.add(id, v),
                MetricKind::Gauge => inner.registry.set_max(id, v),
            }
        }
        for &id in HistogramId::ALL {
            let h = snap.hist(id);
            for (i, &count) in h.buckets.iter().enumerate() {
                if count > 0 {
                    // Replay the bucket at a representative value (its
                    // inclusive upper bound) `count` times' worth in one
                    // shot: bucket placement is exact, the sum is
                    // corrected below.
                    inner.hists.absorb_bucket(id, i, count);
                }
            }
            inner.hists.absorb_sum(id, h.sum);
        }
    }

    /// Freeze every metric, histogram, the retained trace, and the
    /// provenance log at `at_cycle`. Disabled handles return
    /// [`TelemetrySnapshot::empty`].
    pub fn snapshot(&self, at_cycle: u64) -> TelemetrySnapshot {
        match &self.inner {
            Some(inner) => {
                let ring = inner.trace.lock().unwrap();
                let provenance = inner.provenance.lock().unwrap();
                TelemetrySnapshot {
                    at_cycle,
                    values: inner.registry.read_all(),
                    hists: inner.hists.read_all(),
                    events: ring.to_vec(),
                    dropped_events: ring.dropped(),
                    decisions: provenance.records(),
                    decisions_dropped: provenance.dropped(),
                }
            }
            None => TelemetrySnapshot::empty(),
        }
    }
}

/// An open simulated-clock interval against a histogram. Created by
/// [`Telemetry::span_at`]; consumed by [`Span::end`], which observes
/// the saturating cycle delta. Dropping a span without ending it
/// observes nothing.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    id: HistogramId,
    start_cycle: u64,
}

impl Span {
    /// Simulated cycle at which the span opened.
    #[must_use]
    pub fn start_cycle(&self) -> u64 {
        self.start_cycle
    }

    /// Close the span at `at_cycle`, observing the elapsed cycles.
    pub fn end(self, at_cycle: u64) {
        self.telemetry
            .observe(self.id, at_cycle.saturating_sub(self.start_cycle));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr(MetricId::CoreBatches);
        t.set_gauge(MetricId::HpmPollPeriodMs, 99);
        t.record(5, TraceKind::BufferOverflow { dropped: 1 });
        let snap = t.snapshot(5);
        assert_eq!(snap, TelemetrySnapshot::empty());
        assert_eq!(t.get(MetricId::CoreBatches), 0);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled(8);
        let u = t.clone();
        t.incr(MetricId::GcMinorCollections);
        u.incr(MetricId::GcMinorCollections);
        assert_eq!(t.get(MetricId::GcMinorCollections), 2);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }

    #[test]
    fn span_observes_elapsed_cycles() {
        let t = Telemetry::enabled(8);
        let span = t.span_at(HistogramId::CorePollGapCycles, 1_000);
        assert_eq!(span.start_cycle(), 1_000);
        span.end(1_500);
        // A span that ends "before" it started observes zero, not a
        // wrapped huge value.
        t.span_at(HistogramId::CorePollGapCycles, 700).end(600);
        let snap = t.snapshot(1_500);
        let h = &snap.hists[HistogramId::CorePollGapCycles as usize];
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 500);
    }

    #[test]
    fn trace_eviction_raises_dropped_counter() {
        let t = Telemetry::enabled(2);
        for c in 0..5 {
            t.record(c, TraceKind::BufferOverflow { dropped: 0 });
        }
        assert_eq!(t.get(MetricId::TelemetryTraceDropped), 3);
        let snap = t.snapshot(5);
        assert_eq!(snap.dropped_events, 3);
        assert_eq!(snap.get(MetricId::TelemetryTraceDropped), 3);
    }

    #[test]
    fn absorb_folds_counters_gauges_and_histograms() {
        let job = Telemetry::enabled(8);
        job.add(MetricId::GcMinorCollections, 3);
        job.set_gauge(MetricId::ProfileRuns, 7);
        job.observe(HistogramId::GcMinorPauseCycles, 100);
        job.observe(HistogramId::GcMinorPauseCycles, 5000);

        let fleet = Telemetry::enabled(8);
        fleet.add(MetricId::GcMinorCollections, 2);
        fleet.set_gauge(MetricId::ProfileRuns, 9);
        fleet.absorb(&job.snapshot(0));
        fleet.absorb(&job.snapshot(0));

        assert_eq!(fleet.get(MetricId::GcMinorCollections), 8);
        // Gauges take the max, not the sum.
        assert_eq!(fleet.get(MetricId::ProfileRuns), 9);
        let snap = fleet.snapshot(0);
        let h = snap.hist(HistogramId::GcMinorPauseCycles);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum, 10_200);

        // Absorbing into a disabled handle is a no-op, not a panic.
        Telemetry::disabled().absorb(&job.snapshot(0));
    }

    #[test]
    fn provenance_round_trips_through_snapshot() {
        let t = Telemetry::enabled(8);
        t.witness_sample(
            7,
            SampleWitness {
                pc: 0x4000_1234,
                method: 2,
                bytecode_index: 5,
                cycle: 900,
            },
        );
        assert_eq!(t.first_witness_cycle(7), Some(900));
        t.record_decision(DecisionRecord {
            cycle: 2_000,
            class: 1,
            field: 7,
            action: "enabled",
            field_misses: 12,
            threshold: 4,
            gap_bytes: 0,
            witnesses: Vec::new(),
            feedback: None,
        });
        let snap = t.snapshot(2_000);
        assert_eq!(snap.decisions.len(), 1);
        assert_eq!(snap.decisions[0].witnesses.len(), 1);
        assert_eq!(snap.decisions[0].witnesses[0].pc, 0x4000_1234);
        assert_eq!(snap.decisions_dropped, 0);

        let off = Telemetry::disabled();
        off.observe(HistogramId::GcMinorPauseCycles, 5);
        off.witness_sample(
            0,
            SampleWitness {
                pc: 0,
                method: 0,
                bytecode_index: 0,
                cycle: 0,
            },
        );
        assert_eq!(off.first_witness_cycle(0), None);
    }
}
