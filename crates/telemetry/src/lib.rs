//! Workspace-wide telemetry: a metrics registry of cheap monotonic
//! counters and gauges, a bounded structured event trace, snapshot
//! diff/export, and the cycle-bucket overhead accountant.
//!
//! The entry point is the [`Telemetry`] handle. It is clone-cheap
//! (an `Arc` internally), `Send + Sync`, and has two states:
//!
//! - [`Telemetry::enabled`] — counters land in a shared atomic
//!   registry and events in a drop-oldest ring;
//! - [`Telemetry::disabled`] — every operation early-returns on a
//!   `None`; no allocation, no atomics, no locking.
//!
//! Telemetry never charges *simulated* cycles: it observes the
//! simulation's clock but does not advance it, so enabling it cannot
//! perturb the experiment being measured.
//!
//! ```
//! use hpmopt_telemetry::{MetricId, Telemetry, TraceKind};
//!
//! let t = Telemetry::enabled(64);
//! t.incr(MetricId::HpmPolls);
//! t.record(
//!     1_000,
//!     TraceKind::PollCompleted { samples: 8, attributed: 7 },
//! );
//! let snap = t.snapshot(1_000);
//! assert_eq!(snap.get(MetricId::HpmPolls), 1);
//! assert_eq!(snap.events.len(), 1);
//!
//! let off = Telemetry::disabled();
//! off.incr(MetricId::HpmPolls); // no-op
//! assert!(!off.is_enabled());
//! ```

pub mod json;
pub mod metrics;
pub mod overhead;
pub mod snapshot;
pub mod trace;

pub use metrics::{MetricId, MetricKind, MetricsRegistry};
pub use overhead::CycleBuckets;
pub use snapshot::TelemetrySnapshot;
pub use trace::{TraceEvent, TraceKind, TraceRing};

use std::sync::{Arc, Mutex};

/// Default number of trace events retained before drop-oldest kicks in.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

struct Inner {
    registry: MetricsRegistry,
    trace: Mutex<TraceRing>,
}

/// Shared handle to the telemetry sinks. See the crate docs.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    /// The default handle is disabled, so plumbing a `Telemetry` field
    /// through existing config structs changes nothing until a caller
    /// opts in.
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// A live handle retaining up to `trace_capacity` events.
    pub fn enabled(trace_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                trace: Mutex::new(TraceRing::new(trace_capacity)),
            })),
        }
    }

    /// A no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter.
    pub fn add(&self, id: MetricId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.add(id, n);
        }
    }

    /// Increment a counter by one.
    pub fn incr(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Overwrite a gauge.
    pub fn set_gauge(&self, id: MetricId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.set(id, value);
        }
    }

    /// Raise a gauge to `value` if below it (for monotonic syncs).
    pub fn set_gauge_max(&self, id: MetricId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.set_max(id, value);
        }
    }

    /// Current value of one metric (0 when disabled).
    pub fn get(&self, id: MetricId) -> u64 {
        match &self.inner {
            Some(inner) => inner.registry.get(id),
            None => 0,
        }
    }

    /// Append a trace event stamped with the given simulated cycle.
    pub fn record(&self, cycle: u64, kind: TraceKind) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.trace.lock().unwrap();
            ring.push(TraceEvent { cycle, kind });
        }
    }

    /// Freeze every metric and the retained trace at `at_cycle`.
    /// Disabled handles return [`TelemetrySnapshot::empty`].
    pub fn snapshot(&self, at_cycle: u64) -> TelemetrySnapshot {
        match &self.inner {
            Some(inner) => {
                let ring = inner.trace.lock().unwrap();
                TelemetrySnapshot {
                    at_cycle,
                    values: inner.registry.read_all(),
                    events: ring.to_vec(),
                    dropped_events: ring.dropped(),
                }
            }
            None => TelemetrySnapshot::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr(MetricId::CoreBatches);
        t.set_gauge(MetricId::HpmPollPeriodMs, 99);
        t.record(5, TraceKind::BufferOverflow { dropped: 1 });
        let snap = t.snapshot(5);
        assert_eq!(snap, TelemetrySnapshot::empty());
        assert_eq!(t.get(MetricId::CoreBatches), 0);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled(8);
        let u = t.clone();
        t.incr(MetricId::GcMinorCollections);
        u.incr(MetricId::GcMinorCollections);
        assert_eq!(t.get(MetricId::GcMinorCollections), 2);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }
}
