//! Minimal JSON reader for the workspace's own exports.
//!
//! The workspace has no JSON dependency, so this module carries a
//! recursive-descent parser for the subset of JSON the
//! [`crate::json::JsonWriter`] emits: objects, arrays, strings (with
//! the writer's escapes), numbers, booleans, and null. It exists so
//! tools like `hpmopt-bench --check` can read committed baselines
//! (e.g. `BENCH_trajectory.json`) back, and so tests can round-trip
//! exports through a real parser.
//!
//! Unlike a general-purpose parser it is strict about what it
//! accepts, and errors are plain strings with a byte offset — good
//! enough to point at a corrupt baseline file.

use std::collections::BTreeMap;

/// The subset of JSON values the workspace writers emit. `null`
/// parses as `Number(NaN)`, matching how [`crate::json::number`]
/// renders non-finite floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Number(f64),
    Bool(bool),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a `u64`; panics when it is not a number (tests
    /// and trusted-baseline readers want the loud failure).
    #[must_use]
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::Number(n) => *n as u64,
            v => panic!("expected number, got {v:?}"),
        }
    }

    /// The value as an `f64`; panics when it is not a number.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Number(n) => *n,
            v => panic!("expected number, got {v:?}"),
        }
    }

    /// The value as a string slice; panics when it is not a string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            v => panic!("expected string, got {v:?}"),
        }
    }

    /// The value as an array slice; panics when it is not an array.
    #[must_use]
    pub fn as_array(&self) -> &[Value] {
        match self {
            Value::Array(items) => items,
            v => panic!("expected array, got {v:?}"),
        }
    }

    /// Member of an object by key; panics on missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map
                .get(key)
                .unwrap_or_else(|| panic!("missing key {key:?}")),
            v => panic!("expected object, got {v:?}"),
        }
    }

    /// Member of an object by key, or `None` when absent or when the
    /// value is not an object.
    #[must_use]
    pub fn try_get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns an error (with a byte offset)
/// instead of panicking, so callers can report a corrupt input file.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Number(f64::NAN)),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if !self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            return Err(format!("expected {lit:?} at byte {}", self.pos));
        }
        self.pos += lit.len();
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                b => return Err(format!("unexpected {:?} in object", b as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                b => return Err(format!("unexpected {:?} in array", b as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        b => return Err(format!("unsupported escape \\{}", b as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unescaped.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": {"b": [1, 2.5, true, "x"]}, "n": null}"#).unwrap();
        let arr = v.get("a").get("b").as_array();
        assert_eq!(arr[0].as_u64(), 1);
        assert_eq!(arr[1].as_f64(), 2.5);
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3].as_str(), "x");
        assert!(v.get("n").as_f64().is_nan());
        assert!(v.try_get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn handles_escaped_strings() {
        let v = parse(r#"{"a": "x\"y\\z\nA"}"#).unwrap();
        assert_eq!(v.get("a").as_str(), "x\"y\\z\nA");
    }
}
