//! Integration tests: ring wraparound accounting (including the
//! `telemetry.trace_dropped` self-metric), exact snapshot diffs across
//! a poll boundary, and a JSON round-trip through the crate's own
//! reader ([`hpmopt_telemetry::read`]).

use hpmopt_telemetry::read::{parse, Value};
use hpmopt_telemetry::{HistogramId, MetricId, Telemetry, TraceKind};

// ---------------------------------------------------------------------
// Ring wraparound
// ---------------------------------------------------------------------

#[test]
fn wraparound_reports_exact_drop_count() {
    let capacity = 16;
    let telemetry = Telemetry::enabled(capacity);
    let pushed = 100u64;
    for i in 0..pushed {
        telemetry.record(
            i,
            TraceKind::PollCompleted {
                samples: i,
                attributed: 0,
            },
        );
    }
    let snap = telemetry.snapshot(pushed);
    assert_eq!(snap.events.len(), capacity);
    assert_eq!(snap.dropped_events, pushed - capacity as u64);
    // The loss is visible as a regular metric too, so it survives into
    // every export without special-casing.
    assert_eq!(
        snap.get(MetricId::TelemetryTraceDropped),
        snap.dropped_events
    );
    // The survivors are exactly the newest `capacity` events, in order.
    let cycles: Vec<u64> = snap.events.iter().map(|e| e.cycle).collect();
    let expected: Vec<u64> = (pushed - capacity as u64..pushed).collect();
    assert_eq!(cycles, expected);
}

// ---------------------------------------------------------------------
// Snapshot diff across a poll boundary
// ---------------------------------------------------------------------

#[test]
fn diff_across_a_poll_boundary_is_exact() {
    let telemetry = Telemetry::enabled(64);

    // Poll 1: 7 samples drained, period gauge at 40 ms.
    telemetry.incr(MetricId::HpmPolls);
    telemetry.add(MetricId::HpmSamplesDrained, 7);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 40);
    telemetry.observe(HistogramId::HpmPollBatchSamples, 7);
    telemetry.record(
        1_000,
        TraceKind::PollCompleted {
            samples: 7,
            attributed: 5,
        },
    );
    let at_poll1 = telemetry.snapshot(1_000);

    // Poll 2: 11 more samples, the period adapted down to 20 ms.
    telemetry.incr(MetricId::HpmPolls);
    telemetry.add(MetricId::HpmSamplesDrained, 11);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 20);
    telemetry.observe(HistogramId::HpmPollBatchSamples, 11);
    telemetry.record(
        2_000,
        TraceKind::PollCompleted {
            samples: 11,
            attributed: 9,
        },
    );
    let at_poll2 = telemetry.snapshot(2_000);

    let between = at_poll2.diff(&at_poll1);
    // Counters: exactly the second poll's contribution.
    assert_eq!(between.get(MetricId::HpmPolls), 1);
    assert_eq!(between.get(MetricId::HpmSamplesDrained), 11);
    // Gauges: the later reading, not a subtraction.
    assert_eq!(between.get(MetricId::HpmPollPeriodMs), 20);
    // Histograms: only the second poll's observation.
    let h = &between.hists[HistogramId::HpmPollBatchSamples as usize];
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum, 11);
    // Events: only those stamped after the earlier snapshot.
    assert_eq!(between.events.len(), 1);
    assert_eq!(between.events[0].cycle, 2_000);
    assert_eq!(between.at_cycle, 2_000);
    assert_eq!(between.dropped_events, 0);
}

// ---------------------------------------------------------------------
// JSON round-trip through the crate's own reader
// ---------------------------------------------------------------------

#[test]
fn snapshot_json_round_trips_through_a_real_parser() {
    let telemetry = Telemetry::enabled(8);
    telemetry.add(MetricId::HpmSamplesGenerated, 566);
    telemetry.add(MetricId::MemsimL1Misses, 150_227);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 160);
    telemetry.observe(HistogramId::GcMinorPauseCycles, 2_048);
    telemetry.record(
        2_399_380,
        TraceKind::GcCollection {
            major: false,
            promoted_bytes: 262_112,
        },
    );
    telemetry.record(
        7_007_050,
        TraceKind::CoallocDecision {
            class: 0,
            field: 0,
            action: "enabled",
        },
    );
    telemetry.record(
        10_199_996,
        TraceKind::Recompilation {
            method: 2,
            tier: "opt",
        },
    );
    let snap = telemetry.snapshot(81_229_847);

    let parsed = parse(&snap.to_json()).expect("snapshot JSON must parse");

    assert_eq!(parsed.get("at_cycle").as_u64(), snap.at_cycle);
    assert_eq!(parsed.get("dropped_events").as_u64(), 0);
    let metrics = parsed.get("metrics");
    for &id in MetricId::ALL {
        assert_eq!(
            metrics.get(id.name()).as_u64(),
            snap.get(id),
            "metric {} did not survive the round trip",
            id.name()
        );
    }
    let gc_hist = parsed.get("histograms").get("gc.minor_pause_cycles");
    assert_eq!(gc_hist.get("count").as_u64(), 1);
    assert_eq!(gc_hist.get("sum").as_u64(), 2_048);
    let buckets = gc_hist.get("buckets").as_array();
    assert_eq!(buckets.len(), 1);
    assert_eq!(buckets[0].get("le").as_str(), "2048");
    let events = parsed.get("events").as_array();
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].get("type"), &Value::Str("gc_collection".into()));
    assert_eq!(events[0].get("major"), &Value::Bool(false));
    assert_eq!(events[0].get("promoted_bytes").as_u64(), 262_112);
    assert_eq!(events[1].get("action"), &Value::Str("enabled".into()));
    assert_eq!(events[2].get("type"), &Value::Str("recompilation".into()));
    assert_eq!(events[2].get("tier"), &Value::Str("opt".into()));
    assert_eq!(events[2].get("cycle").as_u64(), 10_199_996);
    assert_eq!(parsed.get("decisions_dropped").as_u64(), 0);
    assert!(parsed.get("decisions").as_array().is_empty());
}

#[test]
fn parser_handles_escaped_strings() {
    let v = parse(r#"{"a": "x\"y\\z\n", "b": [1, 2.5, true]}"#).unwrap();
    assert_eq!(v.get("a"), &Value::Str("x\"y\\z\n".into()));
    let items = v.get("b").as_array();
    assert_eq!(items[1], Value::Number(2.5));
    assert_eq!(items[2], Value::Bool(true));
}
