//! Integration tests: ring wraparound accounting, exact snapshot diffs
//! across a poll boundary, and a JSON round-trip through a minimal
//! parser written here (the workspace has no JSON dependency, so the
//! test brings its own reader for the writer under test).

use std::collections::BTreeMap;

use hpmopt_telemetry::{MetricId, Telemetry, TraceKind};

// ---------------------------------------------------------------------
// Ring wraparound
// ---------------------------------------------------------------------

#[test]
fn wraparound_reports_exact_drop_count() {
    let capacity = 16;
    let telemetry = Telemetry::enabled(capacity);
    let pushed = 100u64;
    for i in 0..pushed {
        telemetry.record(
            i,
            TraceKind::PollCompleted {
                samples: i,
                attributed: 0,
            },
        );
    }
    let snap = telemetry.snapshot(pushed);
    assert_eq!(snap.events.len(), capacity);
    assert_eq!(snap.dropped_events, pushed - capacity as u64);
    // The survivors are exactly the newest `capacity` events, in order.
    let cycles: Vec<u64> = snap.events.iter().map(|e| e.cycle).collect();
    let expected: Vec<u64> = (pushed - capacity as u64..pushed).collect();
    assert_eq!(cycles, expected);
}

// ---------------------------------------------------------------------
// Snapshot diff across a poll boundary
// ---------------------------------------------------------------------

#[test]
fn diff_across_a_poll_boundary_is_exact() {
    let telemetry = Telemetry::enabled(64);

    // Poll 1: 7 samples drained, period gauge at 40 ms.
    telemetry.incr(MetricId::HpmPolls);
    telemetry.add(MetricId::HpmSamplesDrained, 7);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 40);
    telemetry.record(
        1_000,
        TraceKind::PollCompleted {
            samples: 7,
            attributed: 5,
        },
    );
    let at_poll1 = telemetry.snapshot(1_000);

    // Poll 2: 11 more samples, the period adapted down to 20 ms.
    telemetry.incr(MetricId::HpmPolls);
    telemetry.add(MetricId::HpmSamplesDrained, 11);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 20);
    telemetry.record(
        2_000,
        TraceKind::PollCompleted {
            samples: 11,
            attributed: 9,
        },
    );
    let at_poll2 = telemetry.snapshot(2_000);

    let between = at_poll2.diff(&at_poll1);
    // Counters: exactly the second poll's contribution.
    assert_eq!(between.get(MetricId::HpmPolls), 1);
    assert_eq!(between.get(MetricId::HpmSamplesDrained), 11);
    // Gauges: the later reading, not a subtraction.
    assert_eq!(between.get(MetricId::HpmPollPeriodMs), 20);
    // Events: only those stamped after the earlier snapshot.
    assert_eq!(between.events.len(), 1);
    assert_eq!(between.events[0].cycle, 2_000);
    assert_eq!(between.at_cycle, 2_000);
    assert_eq!(between.dropped_events, 0);
}

// ---------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------

/// The subset of JSON the snapshot writer emits.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Number(f64),
    Bool(bool),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn as_u64(&self) -> u64 {
        match self {
            Value::Number(n) => *n as u64,
            v => panic!("expected number, got {v:?}"),
        }
    }

    fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => &map[key],
            v => panic!("expected object, got {v:?}"),
        }
    }
}

/// Minimal recursive-descent parser for the writer's output. Supports
/// objects, arrays, strings (with the escapes the writer produces),
/// numbers, booleans, and null — nothing more.
fn parse(input: &str) -> Value {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        self.bytes[self.pos]
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(self.peek(), b, "at byte {}", self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Value {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Value::Str(self.string()),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Number(f64::NAN)),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Value {
        assert!(self.bytes[self.pos..].starts_with(lit.as_bytes()));
        self.pos += lit.len();
        v
    }

    fn object(&mut self) -> Value {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Value::Object(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Value::Object(map);
                }
                b => panic!("unexpected {:?} in object", b as char),
            }
        }
    }

    fn array(&mut self) -> Value {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Value::Array(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Value::Array(items);
                }
                b => panic!("unexpected {:?} in array", b as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            self.pos += 4;
                        }
                        b => panic!("unsupported escape \\{}", b as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unescaped.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Value {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Value::Number(text.parse().unwrap())
    }
}

#[test]
fn snapshot_json_round_trips_through_a_real_parser() {
    let telemetry = Telemetry::enabled(8);
    telemetry.add(MetricId::HpmSamplesGenerated, 566);
    telemetry.add(MetricId::MemsimL1Misses, 150_227);
    telemetry.set_gauge(MetricId::HpmPollPeriodMs, 160);
    telemetry.record(
        2_399_380,
        TraceKind::GcCollection {
            major: false,
            promoted_bytes: 262_112,
        },
    );
    telemetry.record(
        7_007_050,
        TraceKind::CoallocDecision {
            class: 0,
            field: 0,
            action: "enabled",
        },
    );
    telemetry.record(
        10_199_996,
        TraceKind::Recompilation {
            method: 2,
            tier: "opt",
        },
    );
    let snap = telemetry.snapshot(81_229_847);

    let parsed = parse(&snap.to_json());

    assert_eq!(parsed.get("at_cycle").as_u64(), snap.at_cycle);
    assert_eq!(parsed.get("dropped_events").as_u64(), 0);
    let metrics = parsed.get("metrics");
    for &id in MetricId::ALL {
        assert_eq!(
            metrics.get(id.name()).as_u64(),
            snap.get(id),
            "metric {} did not survive the round trip",
            id.name()
        );
    }
    let Value::Array(events) = parsed.get("events") else {
        panic!("events must be an array");
    };
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].get("type"), &Value::Str("gc_collection".into()));
    assert_eq!(events[0].get("major"), &Value::Bool(false));
    assert_eq!(events[0].get("promoted_bytes").as_u64(), 262_112);
    assert_eq!(events[1].get("action"), &Value::Str("enabled".into()));
    assert_eq!(events[2].get("type"), &Value::Str("recompilation".into()));
    assert_eq!(events[2].get("tier"), &Value::Str("opt".into()));
    assert_eq!(events[2].get("cycle").as_u64(), 10_199_996);
}

#[test]
fn parser_handles_escaped_strings() {
    let v = parse(r#"{"a": "x\"y\\z\n", "b": [1, 2.5, true]}"#);
    assert_eq!(v.get("a"), &Value::Str("x\"y\\z\n".into()));
    let Value::Array(items) = v.get("b") else {
        panic!("expected array")
    };
    assert_eq!(items[1], Value::Number(2.5));
    assert_eq!(items[2], Value::Bool(true));
}
