//! `hpmopt-report` — run one workload with telemetry enabled and
//! account for where the simulated cycles went.
//!
//! ```text
//! cargo run --release --bin hpmopt-report -- [workload] [size] [-o out.json] [--profile FILE]
//! ```
//!
//! Runs the workload twice — once with telemetry disabled, once
//! enabled — prints the metric table, retained event trace, cycle
//! buckets, and the cycles-to-first-optimization metric, and writes the
//! same data as JSON. The enabled/disabled cycle comparison is part of
//! the report: telemetry observes the simulated clock without advancing
//! it, so the delta must be zero — a nonzero delta is a perturbation
//! bug and fails the process (nonzero exit), which is what lets CI gate
//! on it.
//!
//! With `--profile FILE`, both runs warm-start from `FILE` (identically,
//! so the perturbation check still holds) and the enabled run persists
//! its merged measurements back at exit. The disabled control runs
//! first and never saves, so the two runs always load the same bytes.
//!
//! Additional modes (the perturbation gate runs in all of them):
//!
//! - `--explain CLASS` replaces the metric report with the decision
//!   provenance for `CLASS`: every retained co-allocation decision with
//!   its causal chain — witnessed samples (PC → method/bytecode through
//!   the MC maps), the miss counter against the policy threshold, and
//!   for reverts the feedback evidence.
//! - `--prom` replaces the report with the Prometheus text exposition
//!   of the telemetry snapshot (deterministic; byte-identical across
//!   runs of the same configuration).
//! - `--forced-bad` pins the Figure 8 bad placement (`String` + 128-byte
//!   gap on `db`) identically in both runs, so the provenance log
//!   contains a feedback-driven revert to explain.

use std::process::ExitCode;

use hpmopt::bytecode::{FieldId, MethodId, Program};
use hpmopt::core::policy::PolicyConfig;
use hpmopt::core::runtime::{ForcedBadPlacement, HpmRuntime, RunConfig, RunReport};
use hpmopt::core::ProfileOptions;
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::telemetry::json::{number, JsonWriter};
use hpmopt::telemetry::{
    prom, DecisionRecord, Telemetry, TelemetrySnapshot, TraceKind, DEFAULT_TRACE_CAPACITY,
};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{by_name, names, Size, Workload};

/// Simulation-scale monitoring clock (see `hpmopt-bench`'s setup
/// module): simulated runs are ~10^4 shorter than the paper's, so the
/// monitoring stack is told the CPU runs at 100 MHz to scale poll
/// periods accordingly.
const MONITOR_CPU_HZ: u64 = 100_000_000;
/// Kernel sample-buffer capacity at simulation scale.
const BUFFER_CAPACITY: usize = 256;
/// Auto-mode sample-rate target at simulation scale.
const AUTO_TARGET_PER_SEC: u64 = 1_000;

fn usage() -> ExitCode {
    eprintln!("usage: hpmopt-report [workload] [tiny|small|full] [-o FILE.json] [--profile FILE]");
    eprintln!("                     [--explain CLASS] [--prom] [--forced-bad]");
    eprintln!("workloads: {}", names().join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut workload_name = String::from("db");
    let mut size = Size::Tiny;
    let mut out_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut prom_mode = false;
    let mut forced_bad = false;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return usage(),
            },
            "--profile" => match args.next() {
                Some(p) => profile_path = Some(p),
                None => return usage(),
            },
            "--explain" => match args.next() {
                Some(c) => explain = Some(c),
                None => return usage(),
            },
            "--prom" => prom_mode = true,
            "--forced-bad" => forced_bad = true,
            "-h" | "--help" => return usage(),
            "tiny" => size = Size::Tiny,
            "small" => size = Size::Small,
            "full" => size = Size::Full,
            name if positional == 0 => {
                workload_name = name.to_string();
                positional += 1;
            }
            _ => return usage(),
        }
    }

    let Some(workload) = by_name(&workload_name, size) else {
        eprintln!("unknown workload `{workload_name}`");
        return usage();
    };
    let out_path = out_path.unwrap_or_else(|| format!("target/hpmopt-report-{workload_name}.json"));
    let profile_opts = |save: bool| match &profile_path {
        Some(p) => {
            let mut opts = ProfileOptions::at(p, &workload_name);
            opts.save = save;
            opts
        }
        None => ProfileOptions::default(),
    };

    // Two identical configurations, differing only in the telemetry
    // handle. The disabled run is the control for the zero-perturbation
    // claim below; it runs first and never saves, so both runs load the
    // exact same profile state.
    let disabled = run(
        &workload,
        Telemetry::disabled(),
        profile_opts(false),
        forced_bad,
    );
    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let enabled = run(&workload, telemetry.clone(), profile_opts(true), forced_bad);

    let snapshot = telemetry.snapshot(enabled.cycles);
    let delta_pct = cycle_delta_pct(enabled.cycles, disabled.cycles);

    if prom_mode {
        print!(
            "{}",
            prom::render(
                &snapshot,
                &[("workload", &workload_name), ("size", &size.to_string())]
            )
        );
    } else if let Some(class_name) = &explain {
        if workload.program.class_by_name(class_name).is_none() {
            eprintln!("workload `{workload_name}` has no class `{class_name}`");
            return ExitCode::FAILURE;
        }
        print!(
            "{}",
            render_explain(&workload.program, &snapshot, class_name)
        );
    } else {
        println!("hpmopt-report: {} ({size})", workload.name);
        println!();
        print!("{}", snapshot.render_text());
        println!();
        print!("{}", enabled.cycle_buckets().render_text());
        println!();
        println!("  optimization latency");
        println!(
            "    start                   {:>14}",
            if enabled.warm_start { "warm" } else { "cold" }
        );
        println!(
            "    first decision (cycles) {:>14}",
            enabled
                .cycles_to_first_decision()
                .map_or_else(|| "never".to_string(), |c| c.to_string())
        );
        println!();
        println!("  telemetry perturbation check");
        println!("    cycles (telemetry on)   {:>14}", enabled.cycles);
        println!("    cycles (telemetry off)  {:>14}", disabled.cycles);
        println!("    delta                   {:>13}%", number(delta_pct));
    }

    let json = render_json(&workload_name, size, &snapshot, &enabled, &disabled);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if prom_mode || explain.is_some() {
        // Keep stdout machine-readable (and byte-identical across runs)
        // in the exposition modes.
        eprintln!("wrote {out_path}");
    } else {
        println!();
        println!("  wrote {out_path}");
    }
    if delta_pct != 0.0 {
        eprintln!("FAIL: telemetry perturbed the simulated clock by {delta_pct}%");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Run `workload` under monitoring with the given telemetry handle.
/// Mirrors the experiment configuration in `hpmopt-bench`, plus
/// nonzero compile costs and a live tier-1 timer so the recompilation
/// bucket is exercised.
///
/// With `forced_bad`, the Figure 8 sabotage (a 128-byte gap pinned on
/// `String` a third of the way in, with a tight feedback loop) is
/// applied — identically for the control and enabled runs, so the
/// zero-perturbation gate still holds.
fn run(
    workload: &Workload,
    telemetry: Telemetry,
    profile: ProfileOptions,
    forced_bad: bool,
) -> RunReport {
    let mut vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: workload.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    vm.jit.tier1_enabled = true;
    vm.jit.sample_period_cycles = 200_000;
    vm.jit.tier1_threshold = 2;
    vm.baseline_compile_cycles_per_bc = 3;
    vm.opt_compile_cycles_per_bc = 30;
    vm.step_limit = Some(3_000_000_000);
    let interval = if forced_bad {
        // The Figure 8 recipe: an aggressive fixed interval so the
        // per-class miss-rate series has enough samples per period for
        // the feedback loop to see the sabotage.
        SamplingInterval::Fixed(256)
    } else {
        SamplingInterval::Auto {
            target_per_sec: AUTO_TARGET_PER_SEC,
        }
    };
    let mut config = RunConfig {
        vm,
        hpm: HpmConfig {
            interval,
            buffer_capacity: BUFFER_CAPACITY,
            cpu_hz: MONITOR_CPU_HZ,
            ..HpmConfig::default()
        },
        coalloc: true,
        policy: PolicyConfig {
            min_field_misses: 4,
        },
        profile,
        telemetry,
        ..RunConfig::default()
    };
    if forced_bad {
        config.watch_fields = vec![("String".into(), "value".into())];
        config.forced_bad = Some(ForcedBadPlacement {
            class: "String".into(),
            field: "value".into(),
            gap_bytes: 128,
            at_cycles: 25_000_000,
        });
        config.feedback = hpmopt::core::feedback::FeedbackConfig {
            tolerance: 1.25,
            revert_after_periods: 2,
            min_period_misses: 6,
        };
    }
    HpmRuntime::new(config)
        .run(&workload.program)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name))
}

/// Render the decision-provenance chain for every retained decision on
/// `class_name`: the witnessed samples (PC → method/bytecode via the
/// machine-code maps), the per-field miss counter against the policy
/// threshold, the action taken, and for reverts the feedback evidence —
/// followed by the retained code-lifecycle events (tier promotions,
/// deoptimizations, cache evictions), which bound the epoch windows
/// every witnessed PC was resolved against.
fn render_explain(program: &Program, snapshot: &TelemetrySnapshot, class_name: &str) -> String {
    let class = program
        .class_by_name(class_name)
        .expect("checked by caller");
    let decisions: Vec<&DecisionRecord> = snapshot
        .decisions
        .iter()
        .filter(|d| d.class == class.0)
        .collect();
    let mut out = format!(
        "decision provenance for class {class_name} — {} decision(s) retained",
        decisions.len()
    );
    if snapshot.decisions_dropped > 0 {
        out.push_str(&format!(
            " ({} dropped ring-wide)",
            snapshot.decisions_dropped
        ));
    }
    out.push('\n');
    for d in decisions {
        let target = if d.field == u32::MAX {
            format!("class {class_name}")
        } else {
            format!("field {}", program.field_name(FieldId(d.field)))
        };
        out.push_str(&format!("\n[{} cycles] {} — {target}\n", d.cycle, d.action));
        if d.field != u32::MAX {
            out.push_str(&format!(
                "  miss counter {} >= threshold {} at decision time\n",
                d.field_misses, d.threshold
            ));
        }
        if d.gap_bytes > 0 {
            out.push_str(&format!("  pinned gap: {} bytes\n", d.gap_bytes));
        }
        if d.witnesses.is_empty() {
            if d.field != u32::MAX {
                out.push_str("  (no witness samples retained)\n");
            }
        } else {
            out.push_str("  witnessed samples (PC -> MC-map resolution):\n");
            for w in &d.witnesses {
                out.push_str(&format!(
                    "    pc {:#014x} -> {} @ bytecode {} (cycle {})\n",
                    w.pc,
                    program.method_name(MethodId(w.method)),
                    w.bytecode_index,
                    w.cycle
                ));
            }
        }
        if let Some(f) = &d.feedback {
            out.push_str(&format!(
                "  feedback: observed {:.2} misses/Mcycle vs baseline {:.2} \
                 (tolerance x{:.2}), {} regressing period(s)\n",
                f.observed_rate, f.baseline_rate, f.tolerance, f.regressing_periods
            ));
        }
    }
    out.push_str(&render_code_lifecycle(program, snapshot));
    out
}

/// Render the retained code-lifecycle trace: every recompilation,
/// deoptimization, and code-cache eviction/replacement, with method
/// names resolved. These events are provenance for sample attribution —
/// each free advances the code epoch, and a witnessed PC only resolved
/// because it was stamped inside the owning artifact's epoch window.
fn render_code_lifecycle(program: &Program, snapshot: &TelemetrySnapshot) -> String {
    let method = |m: u32| program.method_name(MethodId(m));
    let lines: Vec<String> = snapshot
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Recompilation { method: m, tier } => Some(format!(
                "    [{} cycles] compile {} -> tier {tier}\n",
                e.cycle,
                method(m)
            )),
            TraceKind::Deopt { method: m } => Some(format!(
                "    [{} cycles] deopt {} (region exit, back to baseline)\n",
                e.cycle,
                method(m)
            )),
            TraceKind::CodeEviction {
                method: m,
                tier,
                epoch,
                evicted,
            } => Some(format!(
                "    [{} cycles] {} {} (tier {tier}) -> code epoch {epoch}\n",
                e.cycle,
                if evicted { "evict" } else { "free (replaced)" },
                method(m)
            )),
            _ => None,
        })
        .collect();
    if lines.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "\ncode lifecycle — {} retained event(s); each free advances the \
         code epoch that witnessed PCs are resolved against:\n",
        lines.len()
    );
    for l in lines {
        out.push_str(&l);
    }
    out
}

/// Cycle difference of the telemetry-enabled run relative to the
/// disabled control, in percent.
fn cycle_delta_pct(enabled: u64, disabled: u64) -> f64 {
    if disabled == 0 {
        return 0.0;
    }
    (enabled as f64 - disabled as f64).abs() / disabled as f64 * 100.0
}

fn render_json(
    workload: &str,
    size: Size,
    snapshot: &TelemetrySnapshot,
    enabled: &RunReport,
    disabled: &RunReport,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("workload", workload);
    w.field_str("size", &size.to_string());
    w.key("optimization_latency").object_value();
    w.field_str("start", if enabled.warm_start { "warm" } else { "cold" });
    match enabled.cycles_to_first_decision() {
        Some(c) => w.field_u64("first_decision_cycles", c),
        None => w.field_str("first_decision_cycles", "never"),
    };
    w.end_object();
    w.key("perturbation").object_value();
    w.field_u64("cycles_enabled", enabled.cycles);
    w.field_u64("cycles_disabled", disabled.cycles);
    w.field_f64(
        "cycle_delta_pct",
        cycle_delta_pct(enabled.cycles, disabled.cycles),
    );
    w.end_object();
    w.key("snapshot");
    snapshot.write_json(&mut w);
    w.key("cycle_buckets");
    enabled.cycle_buckets().write_json(&mut w);
    w.end_object();
    w.finish()
}
