//! `hpmopt-bench` — measure the performance trajectory and gate it
//! against the committed baseline.
//!
//! ```text
//! hpmopt-bench --update [--out BENCH_trajectory.json]    # write a new baseline
//! hpmopt-bench --check  [--baseline FILE] [--threshold-pct N]
//! ```
//!
//! `--check` re-measures the fixed workload set, the pinned stress
//! shard, and the serve open-loop latency point, compares them against
//! the baseline file, and exits nonzero when any workload or stress
//! seed regressed beyond the threshold, when a stress digest changed,
//! when a telemetry perturbation delta is not exactly zero, or when the
//! serve row regressed (queue-wait tail, eviction count, or the
//! multi-worker speedup). Wall time is printed but never gated.
//! `--update` writes the freshly measured trajectory out as the new
//! baseline — commit the file to bank an improvement or to deliberately
//! accept a behavior change. `--no-serve` skips the serve row (for fast
//! smokes; a baseline written with it will fail a full `--check`).
//!
//! This binary lives in the root `hpmopt` package rather than
//! `hpmopt-bench` because the serve row is measured by `hpmopt-serve`,
//! which itself depends on `hpmopt-bench` for the trajectory schema —
//! only the root crate sits above both.

use std::process::ExitCode;

use hpmopt_bench::trajectory::{
    compare, measure, Trajectory, DEFAULT_STRESS_SEEDS, DEFAULT_WORKLOADS,
};
use hpmopt_workloads::Size;

const DEFAULT_BASELINE: &str = "BENCH_trajectory.json";
const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

fn usage() -> ExitCode {
    eprintln!("usage: hpmopt-bench (--check | --update)");
    eprintln!("  --baseline FILE      baseline to gate against (default {DEFAULT_BASELINE})");
    eprintln!("  --out FILE           where --update writes (default the baseline path)");
    eprintln!("  --threshold-pct N    allowed cycle regression (default {DEFAULT_THRESHOLD_PCT})");
    eprintln!(
        "  --workloads a,b,c    workload set (default {})",
        DEFAULT_WORKLOADS.join(",")
    );
    eprintln!("  --seeds N            pinned stress seeds 0..N (default {DEFAULT_STRESS_SEEDS})");
    eprintln!("  --no-serve           skip the serve open-loop row (fast smoke)");
    ExitCode::FAILURE
}

struct Args {
    check: bool,
    update: bool,
    baseline: String,
    out: Option<String>,
    threshold_pct: f64,
    workloads: Vec<String>,
    seeds: u64,
    serve: bool,
}

fn parse_args() -> Result<Args, ()> {
    let mut a = Args {
        check: false,
        update: false,
        baseline: DEFAULT_BASELINE.to_string(),
        out: None,
        threshold_pct: DEFAULT_THRESHOLD_PCT,
        workloads: DEFAULT_WORKLOADS.iter().map(ToString::to_string).collect(),
        seeds: DEFAULT_STRESS_SEEDS,
        serve: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => a.check = true,
            "--update" => a.update = true,
            "--baseline" => a.baseline = args.next().ok_or(())?,
            "--out" => a.out = Some(args.next().ok_or(())?),
            "--threshold-pct" => {
                a.threshold_pct = args.next().ok_or(())?.parse().map_err(|_| ())?;
            }
            "--workloads" => {
                a.workloads = args
                    .next()
                    .ok_or(())?
                    .split(',')
                    .map(ToString::to_string)
                    .collect();
            }
            "--seeds" => a.seeds = args.next().ok_or(())?.parse().map_err(|_| ())?,
            "--no-serve" => a.serve = false,
            _ => return Err(()),
        }
    }
    if a.check == a.update {
        return Err(()); // exactly one mode
    }
    Ok(a)
}

fn print_trajectory(t: &Trajectory) {
    println!("  workload       cycles    overhead%   perturb%   wall");
    for p in &t.workloads {
        println!(
            "  {:<10} {:>12} {:>+10.2}% {:>+9.2}% {:>5}ms",
            format!("{} {}", p.name, p.size),
            p.cycles,
            p.monitoring_overhead_pct,
            p.perturbation_delta_pct,
            p.wall_ms
        );
    }
    for p in &t.stress {
        println!(
            "  stress seed {:<2} {:>10} cycles, {:>10} monitored",
            p.seed, p.cycles, p.monitored_cycles
        );
    }
    for p in &t.serve {
        println!(
            "  serve {:<9} {} jobs @ {} qps: {:.1} -> {:.1} jobs/s (1w -> 4w), \
             queue wait p50/p95/p99 {}/{}/{} cycles, {} eviction(s), {}ms",
            p.name,
            p.jobs,
            p.qps,
            p.throughput_1w_jobs_per_sec,
            p.throughput_4w_jobs_per_sec,
            p.p50_queue_wait_cycles,
            p.p95_queue_wait_cycles,
            p.p99_queue_wait_cycles,
            p.repo_evictions,
            p.wall_ms
        );
    }
}

/// The throughput movement `--check` measured, workload by workload:
/// baseline vs current bytecodes per simulated kilocycle. Informational
/// (the gate acts on cycles, digests, and perturbation), but it makes a
/// banked speedup — or an unbanked slowdown — visible at a glance.
fn print_throughput_delta(current: &Trajectory, baseline: &Trajectory) {
    println!("  throughput (bytecodes per kilocycle):");
    println!(
        "  {:<10} {:>10} {:>10} {:>8}",
        "workload", "old", "new", "delta"
    );
    for b in &baseline.workloads {
        let Some(c) = current
            .workloads
            .iter()
            .find(|c| c.name == b.name && c.size == b.size)
        else {
            continue;
        };
        let delta = if b.throughput_bc_per_kcycle == 0.0 {
            0.0
        } else {
            (c.throughput_bc_per_kcycle / b.throughput_bc_per_kcycle - 1.0) * 100.0
        };
        println!(
            "  {:<10} {:>10.1} {:>10.1} {:>+7.1}%",
            format!("{} {}", b.name, b.size),
            b.throughput_bc_per_kcycle,
            c.throughput_bc_per_kcycle,
            delta
        );
    }
}

fn main() -> ExitCode {
    let Ok(args) = parse_args() else {
        return usage();
    };

    println!(
        "hpmopt-bench: measuring {} workload(s) + {} stress seed(s){}",
        args.workloads.len(),
        args.seeds,
        if args.serve { " + serve open-loop" } else { "" }
    );
    let mut current = measure(&args.workloads, Size::Tiny, args.seeds);
    if args.serve {
        current
            .serve
            .push(hpmopt_serve::openloop::trajectory_point());
    }
    print_trajectory(&current);

    if args.update {
        let out = args.out.unwrap_or(args.baseline);
        if let Err(e) = std::fs::write(&out, current.to_json()) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out}");
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", args.baseline);
            eprintln!("(generate one with: hpmopt-bench --update)");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Trajectory::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("corrupt baseline {}: {e}", args.baseline);
            return ExitCode::FAILURE;
        }
    };
    print_throughput_delta(&current, &baseline);
    let violations = compare(&current, &baseline, args.threshold_pct);
    if violations.is_empty() {
        println!(
            "trajectory check passed against {} (threshold +{}%)",
            args.baseline, args.threshold_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("trajectory check FAILED against {}:", args.baseline);
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
