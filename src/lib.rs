//! # hpmopt — online optimizations driven by hardware performance monitoring
//!
//! A pure-Rust reproduction of *Schneider, Payer, Gross: "Online
//! Optimizations Driven by Hardware Performance Monitoring" (PLDI 2007)*:
//! a managed runtime whose JIT compiler and garbage collector consume
//! precise, per-instruction cache-miss samples from a (simulated) hardware
//! performance-monitoring unit, and use them to co-allocate heap objects
//! online for better data locality.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`bytecode`] — class model, instruction set, program builder
//! - [`memsim`] — memory-hierarchy simulator (caches, DTLB, prefetcher)
//! - [`gc`] — generational collectors with co-allocation support
//! - [`vm`] — execution engine, compilation tiers, machine-code maps, AOS
//! - [`hpm`] — PEBS-style sampling unit, kernel buffer, collector thread
//! - [`core`] — the paper's contribution: sample attribution, per-field
//!   miss monitoring, co-allocation policy, and optimization feedback
//! - [`workloads`] — the 16 synthetic benchmark programs of Table 1
//! - [`telemetry`] — metrics registry, event trace, and the overhead
//!   accountant behind the `hpmopt-report` binary
//! - [`profile`] — persistent profile repository: versioned on-disk
//!   miss histograms + decision logs that warm-start later runs
//! - [`serve`] — multi-tenant VM service: a long-lived daemon
//!   multiplexing isolated jobs over a worker pool around a shared
//!   warm-start profile repository (`hpmopt-serve run|bench`)
//!
//! # Quickstart
//!
//! ```
//! use hpmopt::core::runtime::{HpmRuntime, RunConfig};
//! use hpmopt::workloads;
//!
//! let workload = workloads::by_name("fop", workloads::Size::Tiny).unwrap();
//! let report = HpmRuntime::new(RunConfig::default())
//!     .run(&workload.program)
//!     .unwrap();
//! assert!(report.cycles > 0);
//! ```

pub use hpmopt_bytecode as bytecode;
pub use hpmopt_core as core;
pub use hpmopt_gc as gc;
pub use hpmopt_hpm as hpm;
pub use hpmopt_memsim as memsim;
pub use hpmopt_profile as profile;
pub use hpmopt_serve as serve;
pub use hpmopt_telemetry as telemetry;
pub use hpmopt_vm as vm;
pub use hpmopt_workloads as workloads;
