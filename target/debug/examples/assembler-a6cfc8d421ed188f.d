/root/repo/target/debug/examples/assembler-a6cfc8d421ed188f.d: examples/assembler.rs

/root/repo/target/debug/examples/assembler-a6cfc8d421ed188f: examples/assembler.rs

examples/assembler.rs:
