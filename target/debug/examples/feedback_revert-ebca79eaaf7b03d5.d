/root/repo/target/debug/examples/feedback_revert-ebca79eaaf7b03d5.d: examples/feedback_revert.rs Cargo.toml

/root/repo/target/debug/examples/libfeedback_revert-ebca79eaaf7b03d5.rmeta: examples/feedback_revert.rs Cargo.toml

examples/feedback_revert.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
