/root/repo/target/debug/examples/quickstart-f7916ec1a7d63201.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7916ec1a7d63201: examples/quickstart.rs

examples/quickstart.rs:
