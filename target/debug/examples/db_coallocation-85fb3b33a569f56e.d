/root/repo/target/debug/examples/db_coallocation-85fb3b33a569f56e.d: examples/db_coallocation.rs

/root/repo/target/debug/examples/db_coallocation-85fb3b33a569f56e: examples/db_coallocation.rs

examples/db_coallocation.rs:
