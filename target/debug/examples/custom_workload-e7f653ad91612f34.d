/root/repo/target/debug/examples/custom_workload-e7f653ad91612f34.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-e7f653ad91612f34: examples/custom_workload.rs

examples/custom_workload.rs:
