/root/repo/target/debug/examples/feedback_revert-f9ab56a7c0916500.d: examples/feedback_revert.rs

/root/repo/target/debug/examples/feedback_revert-f9ab56a7c0916500: examples/feedback_revert.rs

examples/feedback_revert.rs:
