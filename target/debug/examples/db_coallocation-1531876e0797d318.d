/root/repo/target/debug/examples/db_coallocation-1531876e0797d318.d: examples/db_coallocation.rs Cargo.toml

/root/repo/target/debug/examples/libdb_coallocation-1531876e0797d318.rmeta: examples/db_coallocation.rs Cargo.toml

examples/db_coallocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
