/root/repo/target/debug/examples/assembler-14d12f7d951bb56f.d: examples/assembler.rs Cargo.toml

/root/repo/target/debug/examples/libassembler-14d12f7d951bb56f.rmeta: examples/assembler.rs Cargo.toml

examples/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
