/root/repo/target/debug/deps/proptests-d92ec8c14065dec5.d: crates/memsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d92ec8c14065dec5.rmeta: crates/memsim/tests/proptests.rs Cargo.toml

crates/memsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
