/root/repo/target/debug/deps/proptests-356615ab0aaee85b.d: crates/hpm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-356615ab0aaee85b.rmeta: crates/hpm/tests/proptests.rs Cargo.toml

crates/hpm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
