/root/repo/target/debug/deps/workloads_run-c4e3060e288a080b.d: tests/workloads_run.rs

/root/repo/target/debug/deps/workloads_run-c4e3060e288a080b: tests/workloads_run.rs

tests/workloads_run.rs:
