/root/repo/target/debug/deps/hpmopt-5cf530217ef09259.d: src/lib.rs

/root/repo/target/debug/deps/hpmopt-5cf530217ef09259: src/lib.rs

src/lib.rs:
