/root/repo/target/debug/deps/collector_telemetry-4f67034a1ca5d000.d: crates/hpm/tests/collector_telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libcollector_telemetry-4f67034a1ca5d000.rmeta: crates/hpm/tests/collector_telemetry.rs Cargo.toml

crates/hpm/tests/collector_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
