/root/repo/target/debug/deps/hpmopt_bytecode-1f7fbce8dd1384ef.d: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/debug/deps/hpmopt_bytecode-1f7fbce8dd1384ef: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/asm.rs:
crates/bytecode/src/builder.rs:
crates/bytecode/src/class.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/instr.rs:
crates/bytecode/src/method.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
