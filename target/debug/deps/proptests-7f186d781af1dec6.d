/root/repo/target/debug/deps/proptests-7f186d781af1dec6.d: crates/bytecode/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7f186d781af1dec6: crates/bytecode/tests/proptests.rs

crates/bytecode/tests/proptests.rs:
