/root/repo/target/debug/deps/hpmopt_bytecode-f58148740a8fd528.d: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_bytecode-f58148740a8fd528.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

crates/bytecode/src/lib.rs:
crates/bytecode/src/asm.rs:
crates/bytecode/src/builder.rs:
crates/bytecode/src/class.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/instr.rs:
crates/bytecode/src/method.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
