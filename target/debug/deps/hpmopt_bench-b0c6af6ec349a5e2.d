/root/repo/target/debug/deps/hpmopt_bench-b0c6af6ec349a5e2.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_bench-b0c6af6ec349a5e2.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/export.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fmt.rs:
crates/bench/src/setup.rs:
crates/bench/src/table1.rs:
crates/bench/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
