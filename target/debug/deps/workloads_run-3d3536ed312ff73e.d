/root/repo/target/debug/deps/workloads_run-3d3536ed312ff73e.d: tests/workloads_run.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads_run-3d3536ed312ff73e.rmeta: tests/workloads_run.rs Cargo.toml

tests/workloads_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
