/root/repo/target/debug/deps/hpmopt_telemetry-170ebd979cecceb1.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/hpmopt_telemetry-170ebd979cecceb1: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/overhead.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/trace.rs:
