/root/repo/target/debug/deps/experiments-d9085012aad4168f.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-d9085012aad4168f.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
