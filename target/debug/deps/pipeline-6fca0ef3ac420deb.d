/root/repo/target/debug/deps/pipeline-6fca0ef3ac420deb.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-6fca0ef3ac420deb.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
