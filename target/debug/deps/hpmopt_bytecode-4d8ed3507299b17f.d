/root/repo/target/debug/deps/hpmopt_bytecode-4d8ed3507299b17f.d: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/debug/deps/libhpmopt_bytecode-4d8ed3507299b17f.rlib: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/debug/deps/libhpmopt_bytecode-4d8ed3507299b17f.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/asm.rs:
crates/bytecode/src/builder.rs:
crates/bytecode/src/class.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/instr.rs:
crates/bytecode/src/method.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
