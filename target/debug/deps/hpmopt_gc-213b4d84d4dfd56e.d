/root/repo/target/debug/deps/hpmopt_gc-213b4d84d4dfd56e.d: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs

/root/repo/target/debug/deps/libhpmopt_gc-213b4d84d4dfd56e.rlib: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs

/root/repo/target/debug/deps/libhpmopt_gc-213b4d84d4dfd56e.rmeta: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs

crates/gc/src/lib.rs:
crates/gc/src/classtable.rs:
crates/gc/src/freelist.rs:
crates/gc/src/heap.rs:
crates/gc/src/los.rs:
crates/gc/src/nursery.rs:
crates/gc/src/object.rs:
crates/gc/src/policy.rs:
crates/gc/src/raw.rs:
crates/gc/src/remset.rs:
crates/gc/src/semispace.rs:
crates/gc/src/stats.rs:
