/root/repo/target/debug/deps/pipeline-64589a5127120fce.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-64589a5127120fce: tests/pipeline.rs

tests/pipeline.rs:
