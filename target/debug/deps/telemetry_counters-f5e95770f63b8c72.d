/root/repo/target/debug/deps/telemetry_counters-f5e95770f63b8c72.d: crates/core/tests/telemetry_counters.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_counters-f5e95770f63b8c72.rmeta: crates/core/tests/telemetry_counters.rs Cargo.toml

crates/core/tests/telemetry_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
