/root/repo/target/debug/deps/proptests-ba13293159984149.d: crates/gc/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ba13293159984149: crates/gc/tests/proptests.rs

crates/gc/tests/proptests.rs:
