/root/repo/target/debug/deps/telemetry_counters-4efb24ea7c8d0572.d: crates/core/tests/telemetry_counters.rs

/root/repo/target/debug/deps/telemetry_counters-4efb24ea7c8d0572: crates/core/tests/telemetry_counters.rs

crates/core/tests/telemetry_counters.rs:
