/root/repo/target/debug/deps/collector_telemetry-010b53ba0b7aed57.d: crates/hpm/tests/collector_telemetry.rs

/root/repo/target/debug/deps/collector_telemetry-010b53ba0b7aed57: crates/hpm/tests/collector_telemetry.rs

crates/hpm/tests/collector_telemetry.rs:
