/root/repo/target/debug/deps/hpmopt_core-d412dec308188e9d.d: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/libhpmopt_core-d412dec308188e9d.rlib: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

/root/repo/target/debug/deps/libhpmopt_core-d412dec308188e9d.rmeta: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/feedback.rs:
crates/core/src/interest.rs:
crates/core/src/mapping.rs:
crates/core/src/monitor.rs:
crates/core/src/phases.rs:
crates/core/src/policy.rs:
crates/core/src/runtime.rs:
