/root/repo/target/debug/deps/telemetry-0163577613a1c333.d: crates/telemetry/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-0163577613a1c333.rmeta: crates/telemetry/tests/telemetry.rs Cargo.toml

crates/telemetry/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
