/root/repo/target/debug/deps/proptests-863b5c5971b56522.d: crates/bytecode/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-863b5c5971b56522.rmeta: crates/bytecode/tests/proptests.rs Cargo.toml

crates/bytecode/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
