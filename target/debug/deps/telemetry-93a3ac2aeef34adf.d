/root/repo/target/debug/deps/telemetry-93a3ac2aeef34adf.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-93a3ac2aeef34adf: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
