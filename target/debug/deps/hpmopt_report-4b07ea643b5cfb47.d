/root/repo/target/debug/deps/hpmopt_report-4b07ea643b5cfb47.d: src/bin/report.rs

/root/repo/target/debug/deps/hpmopt_report-4b07ea643b5cfb47: src/bin/report.rs

src/bin/report.rs:
