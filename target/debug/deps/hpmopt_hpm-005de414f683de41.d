/root/repo/target/debug/deps/hpmopt_hpm-005de414f683de41.d: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_hpm-005de414f683de41.rmeta: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs Cargo.toml

crates/hpm/src/lib.rs:
crates/hpm/src/collector.rs:
crates/hpm/src/kernel.rs:
crates/hpm/src/pebs.rs:
crates/hpm/src/userlib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
