/root/repo/target/debug/deps/hpmopt_hpm-c7b814ba4dd586a1.d: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/debug/deps/libhpmopt_hpm-c7b814ba4dd586a1.rlib: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/debug/deps/libhpmopt_hpm-c7b814ba4dd586a1.rmeta: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

crates/hpm/src/lib.rs:
crates/hpm/src/collector.rs:
crates/hpm/src/kernel.rs:
crates/hpm/src/pebs.rs:
crates/hpm/src/userlib.rs:
