/root/repo/target/debug/deps/hpmopt_workloads-3fe5bd7148d6c04d.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/compress.rs crates/workloads/src/db.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jack.rs crates/workloads/src/javac.rs crates/workloads/src/jess.rs crates/workloads/src/jython.rs crates/workloads/src/luindex.rs crates/workloads/src/lusearch.rs crates/workloads/src/mpegaudio.rs crates/workloads/src/mtrt.rs crates/workloads/src/pmd.rs crates/workloads/src/pseudojbb.rs

/root/repo/target/debug/deps/libhpmopt_workloads-3fe5bd7148d6c04d.rlib: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/compress.rs crates/workloads/src/db.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jack.rs crates/workloads/src/javac.rs crates/workloads/src/jess.rs crates/workloads/src/jython.rs crates/workloads/src/luindex.rs crates/workloads/src/lusearch.rs crates/workloads/src/mpegaudio.rs crates/workloads/src/mtrt.rs crates/workloads/src/pmd.rs crates/workloads/src/pseudojbb.rs

/root/repo/target/debug/deps/libhpmopt_workloads-3fe5bd7148d6c04d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/compress.rs crates/workloads/src/db.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jack.rs crates/workloads/src/javac.rs crates/workloads/src/jess.rs crates/workloads/src/jython.rs crates/workloads/src/luindex.rs crates/workloads/src/lusearch.rs crates/workloads/src/mpegaudio.rs crates/workloads/src/mtrt.rs crates/workloads/src/pmd.rs crates/workloads/src/pseudojbb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/antlr.rs:
crates/workloads/src/bloat.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/db.rs:
crates/workloads/src/fop.rs:
crates/workloads/src/hsqldb.rs:
crates/workloads/src/jack.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jess.rs:
crates/workloads/src/jython.rs:
crates/workloads/src/luindex.rs:
crates/workloads/src/lusearch.rs:
crates/workloads/src/mpegaudio.rs:
crates/workloads/src/mtrt.rs:
crates/workloads/src/pmd.rs:
crates/workloads/src/pseudojbb.rs:
