/root/repo/target/debug/deps/hpmopt_gc-ed2605c77398e722.d: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_gc-ed2605c77398e722.rmeta: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs Cargo.toml

crates/gc/src/lib.rs:
crates/gc/src/classtable.rs:
crates/gc/src/freelist.rs:
crates/gc/src/heap.rs:
crates/gc/src/los.rs:
crates/gc/src/nursery.rs:
crates/gc/src/object.rs:
crates/gc/src/policy.rs:
crates/gc/src/raw.rs:
crates/gc/src/remset.rs:
crates/gc/src/semispace.rs:
crates/gc/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
