/root/repo/target/debug/deps/proptests-31c3c2acfca7461e.d: crates/gc/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-31c3c2acfca7461e.rmeta: crates/gc/tests/proptests.rs Cargo.toml

crates/gc/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
