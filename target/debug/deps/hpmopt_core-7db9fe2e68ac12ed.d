/root/repo/target/debug/deps/hpmopt_core-7db9fe2e68ac12ed.d: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_core-7db9fe2e68ac12ed.rmeta: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/feedback.rs:
crates/core/src/interest.rs:
crates/core/src/mapping.rs:
crates/core/src/monitor.rs:
crates/core/src/phases.rs:
crates/core/src/policy.rs:
crates/core/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
