/root/repo/target/debug/deps/hpmopt_telemetry-c5b77fa2baa20718.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libhpmopt_telemetry-c5b77fa2baa20718.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libhpmopt_telemetry-c5b77fa2baa20718.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/overhead.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/trace.rs:
