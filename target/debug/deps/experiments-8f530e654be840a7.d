/root/repo/target/debug/deps/experiments-8f530e654be840a7.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-8f530e654be840a7.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
