/root/repo/target/debug/deps/hpmopt_report-7046d1ba6d370f7d.d: src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_report-7046d1ba6d370f7d.rmeta: src/bin/report.rs Cargo.toml

src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
