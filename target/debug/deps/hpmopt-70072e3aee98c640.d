/root/repo/target/debug/deps/hpmopt-70072e3aee98c640.d: src/lib.rs

/root/repo/target/debug/deps/libhpmopt-70072e3aee98c640.rlib: src/lib.rs

/root/repo/target/debug/deps/libhpmopt-70072e3aee98c640.rmeta: src/lib.rs

src/lib.rs:
