/root/repo/target/debug/deps/hpmopt_vm-79cea90560b4a0fb.d: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libhpmopt_vm-79cea90560b4a0fb.rlib: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libhpmopt_vm-79cea90560b4a0fb.rmeta: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/aos.rs:
crates/vm/src/compiler.rs:
crates/vm/src/config.rs:
crates/vm/src/hooks.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/methodtable.rs:
crates/vm/src/value.rs:
