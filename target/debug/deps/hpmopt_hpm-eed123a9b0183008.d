/root/repo/target/debug/deps/hpmopt_hpm-eed123a9b0183008.d: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/debug/deps/hpmopt_hpm-eed123a9b0183008: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

crates/hpm/src/lib.rs:
crates/hpm/src/collector.rs:
crates/hpm/src/kernel.rs:
crates/hpm/src/pebs.rs:
crates/hpm/src/userlib.rs:
