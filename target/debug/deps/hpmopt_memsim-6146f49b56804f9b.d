/root/repo/target/debug/deps/hpmopt_memsim-6146f49b56804f9b.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_memsim-6146f49b56804f9b.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs Cargo.toml

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/config.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/prefetch.rs:
crates/memsim/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
