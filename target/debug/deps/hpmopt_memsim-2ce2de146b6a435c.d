/root/repo/target/debug/deps/hpmopt_memsim-2ce2de146b6a435c.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/hpmopt_memsim-2ce2de146b6a435c: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/config.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/prefetch.rs:
crates/memsim/src/tlb.rs:
