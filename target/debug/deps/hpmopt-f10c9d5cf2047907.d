/root/repo/target/debug/deps/hpmopt-f10c9d5cf2047907.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt-f10c9d5cf2047907.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
