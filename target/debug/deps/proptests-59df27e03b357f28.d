/root/repo/target/debug/deps/proptests-59df27e03b357f28.d: crates/vm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-59df27e03b357f28: crates/vm/tests/proptests.rs

crates/vm/tests/proptests.rs:
