/root/repo/target/debug/deps/proptests-8853d9e049ff81d8.d: crates/hpm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8853d9e049ff81d8: crates/hpm/tests/proptests.rs

crates/hpm/tests/proptests.rs:
