/root/repo/target/debug/deps/proptests-524f22d1957a5935.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-524f22d1957a5935.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
