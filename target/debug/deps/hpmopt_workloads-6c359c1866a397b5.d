/root/repo/target/debug/deps/hpmopt_workloads-6c359c1866a397b5.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/compress.rs crates/workloads/src/db.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jack.rs crates/workloads/src/javac.rs crates/workloads/src/jess.rs crates/workloads/src/jython.rs crates/workloads/src/luindex.rs crates/workloads/src/lusearch.rs crates/workloads/src/mpegaudio.rs crates/workloads/src/mtrt.rs crates/workloads/src/pmd.rs crates/workloads/src/pseudojbb.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_workloads-6c359c1866a397b5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/antlr.rs crates/workloads/src/bloat.rs crates/workloads/src/compress.rs crates/workloads/src/db.rs crates/workloads/src/fop.rs crates/workloads/src/hsqldb.rs crates/workloads/src/jack.rs crates/workloads/src/javac.rs crates/workloads/src/jess.rs crates/workloads/src/jython.rs crates/workloads/src/luindex.rs crates/workloads/src/lusearch.rs crates/workloads/src/mpegaudio.rs crates/workloads/src/mtrt.rs crates/workloads/src/pmd.rs crates/workloads/src/pseudojbb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/antlr.rs:
crates/workloads/src/bloat.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/db.rs:
crates/workloads/src/fop.rs:
crates/workloads/src/hsqldb.rs:
crates/workloads/src/jack.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jess.rs:
crates/workloads/src/jython.rs:
crates/workloads/src/luindex.rs:
crates/workloads/src/lusearch.rs:
crates/workloads/src/mpegaudio.rs:
crates/workloads/src/mtrt.rs:
crates/workloads/src/pmd.rs:
crates/workloads/src/pseudojbb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
