/root/repo/target/debug/deps/proptests-2acdb28f87e1a773.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2acdb28f87e1a773: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
