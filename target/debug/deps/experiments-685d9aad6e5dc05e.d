/root/repo/target/debug/deps/experiments-685d9aad6e5dc05e.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-685d9aad6e5dc05e: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
