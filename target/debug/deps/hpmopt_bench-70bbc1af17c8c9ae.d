/root/repo/target/debug/deps/hpmopt_bench-70bbc1af17c8c9ae.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libhpmopt_bench-70bbc1af17c8c9ae.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libhpmopt_bench-70bbc1af17c8c9ae.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/export.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fmt.rs:
crates/bench/src/setup.rs:
crates/bench/src/table1.rs:
crates/bench/src/table2.rs:
