/root/repo/target/debug/deps/hpmopt-fe249245e85b745f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt-fe249245e85b745f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
