/root/repo/target/debug/deps/components-272f932a79166136.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-272f932a79166136.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
