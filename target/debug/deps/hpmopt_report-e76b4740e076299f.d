/root/repo/target/debug/deps/hpmopt_report-e76b4740e076299f.d: src/bin/report.rs

/root/repo/target/debug/deps/hpmopt_report-e76b4740e076299f: src/bin/report.rs

src/bin/report.rs:
