/root/repo/target/debug/deps/hpmopt_vm-933c755c574bdf0f.d: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_vm-933c755c574bdf0f.rmeta: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/aos.rs:
crates/vm/src/compiler.rs:
crates/vm/src/config.rs:
crates/vm/src/hooks.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/methodtable.rs:
crates/vm/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
