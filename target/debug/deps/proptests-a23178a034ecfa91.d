/root/repo/target/debug/deps/proptests-a23178a034ecfa91.d: crates/memsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a23178a034ecfa91: crates/memsim/tests/proptests.rs

crates/memsim/tests/proptests.rs:
