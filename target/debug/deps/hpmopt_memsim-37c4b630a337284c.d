/root/repo/target/debug/deps/hpmopt_memsim-37c4b630a337284c.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/libhpmopt_memsim-37c4b630a337284c.rlib: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/libhpmopt_memsim-37c4b630a337284c.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/config.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/prefetch.rs:
crates/memsim/src/tlb.rs:
