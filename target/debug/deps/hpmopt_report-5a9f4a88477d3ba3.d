/root/repo/target/debug/deps/hpmopt_report-5a9f4a88477d3ba3.d: src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_report-5a9f4a88477d3ba3.rmeta: src/bin/report.rs Cargo.toml

src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
