/root/repo/target/debug/deps/hpmopt_telemetry-4bce3c4f58db5e0c.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libhpmopt_telemetry-4bce3c4f58db5e0c.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/overhead.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
