/root/repo/target/debug/deps/proptests-02957a357e8bf579.d: crates/vm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-02957a357e8bf579.rmeta: crates/vm/tests/proptests.rs Cargo.toml

crates/vm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
