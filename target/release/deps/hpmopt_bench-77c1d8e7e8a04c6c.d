/root/repo/target/release/deps/hpmopt_bench-77c1d8e7e8a04c6c.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libhpmopt_bench-77c1d8e7e8a04c6c.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libhpmopt_bench-77c1d8e7e8a04c6c.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/export.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fmt.rs crates/bench/src/setup.rs crates/bench/src/table1.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/export.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fmt.rs:
crates/bench/src/setup.rs:
crates/bench/src/table1.rs:
crates/bench/src/table2.rs:
