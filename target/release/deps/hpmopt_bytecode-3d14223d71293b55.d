/root/repo/target/release/deps/hpmopt_bytecode-3d14223d71293b55.d: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/release/deps/hpmopt_bytecode-3d14223d71293b55: crates/bytecode/src/lib.rs crates/bytecode/src/asm.rs crates/bytecode/src/builder.rs crates/bytecode/src/class.rs crates/bytecode/src/disasm.rs crates/bytecode/src/instr.rs crates/bytecode/src/method.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/asm.rs:
crates/bytecode/src/builder.rs:
crates/bytecode/src/class.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/instr.rs:
crates/bytecode/src/method.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
