/root/repo/target/release/deps/telemetry-ba6e78ea6db65f82.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/release/deps/telemetry-ba6e78ea6db65f82: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
