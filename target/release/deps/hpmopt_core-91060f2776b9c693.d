/root/repo/target/release/deps/hpmopt_core-91060f2776b9c693.d: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/hpmopt_core-91060f2776b9c693: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/feedback.rs:
crates/core/src/interest.rs:
crates/core/src/mapping.rs:
crates/core/src/monitor.rs:
crates/core/src/phases.rs:
crates/core/src/policy.rs:
crates/core/src/runtime.rs:
