/root/repo/target/release/deps/hpmopt_report-50149d111b6717e3.d: src/bin/report.rs

/root/repo/target/release/deps/hpmopt_report-50149d111b6717e3: src/bin/report.rs

src/bin/report.rs:
