/root/repo/target/release/deps/hpmopt_report-a328384dc1188de7.d: src/bin/report.rs

/root/repo/target/release/deps/hpmopt_report-a328384dc1188de7: src/bin/report.rs

src/bin/report.rs:
