/root/repo/target/release/deps/hpmopt_memsim-0bfd63374d91b982.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/hpmopt_memsim-0bfd63374d91b982: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/config.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/prefetch.rs:
crates/memsim/src/tlb.rs:
