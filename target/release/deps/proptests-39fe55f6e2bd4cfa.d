/root/repo/target/release/deps/proptests-39fe55f6e2bd4cfa.d: crates/bytecode/tests/proptests.rs

/root/repo/target/release/deps/proptests-39fe55f6e2bd4cfa: crates/bytecode/tests/proptests.rs

crates/bytecode/tests/proptests.rs:
