/root/repo/target/release/deps/hpmopt-c84fdc2c50fe335c.d: src/lib.rs

/root/repo/target/release/deps/hpmopt-c84fdc2c50fe335c: src/lib.rs

src/lib.rs:
