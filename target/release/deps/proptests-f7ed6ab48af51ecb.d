/root/repo/target/release/deps/proptests-f7ed6ab48af51ecb.d: crates/hpm/tests/proptests.rs

/root/repo/target/release/deps/proptests-f7ed6ab48af51ecb: crates/hpm/tests/proptests.rs

crates/hpm/tests/proptests.rs:
