/root/repo/target/release/deps/pipeline-10803cb74ad45a30.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-10803cb74ad45a30: tests/pipeline.rs

tests/pipeline.rs:
