/root/repo/target/release/deps/proptests-b83ae805ba181b2e.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-b83ae805ba181b2e: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
