/root/repo/target/release/deps/hpmopt_telemetry-a312a60bfc875760.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libhpmopt_telemetry-a312a60bfc875760.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libhpmopt_telemetry-a312a60bfc875760.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/overhead.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/trace.rs:
