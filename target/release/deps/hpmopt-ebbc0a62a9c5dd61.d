/root/repo/target/release/deps/hpmopt-ebbc0a62a9c5dd61.d: src/lib.rs

/root/repo/target/release/deps/libhpmopt-ebbc0a62a9c5dd61.rlib: src/lib.rs

/root/repo/target/release/deps/libhpmopt-ebbc0a62a9c5dd61.rmeta: src/lib.rs

src/lib.rs:
