/root/repo/target/release/deps/hpmopt_memsim-7be5d8d64fd85060.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libhpmopt_memsim-7be5d8d64fd85060.rlib: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libhpmopt_memsim-7be5d8d64fd85060.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/config.rs crates/memsim/src/hierarchy.rs crates/memsim/src/prefetch.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/config.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/prefetch.rs:
crates/memsim/src/tlb.rs:
