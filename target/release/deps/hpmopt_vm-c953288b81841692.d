/root/repo/target/release/deps/hpmopt_vm-c953288b81841692.d: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

/root/repo/target/release/deps/libhpmopt_vm-c953288b81841692.rlib: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

/root/repo/target/release/deps/libhpmopt_vm-c953288b81841692.rmeta: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/aos.rs:
crates/vm/src/compiler.rs:
crates/vm/src/config.rs:
crates/vm/src/hooks.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/methodtable.rs:
crates/vm/src/value.rs:
