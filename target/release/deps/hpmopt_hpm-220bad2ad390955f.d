/root/repo/target/release/deps/hpmopt_hpm-220bad2ad390955f.d: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/release/deps/libhpmopt_hpm-220bad2ad390955f.rlib: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/release/deps/libhpmopt_hpm-220bad2ad390955f.rmeta: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

crates/hpm/src/lib.rs:
crates/hpm/src/collector.rs:
crates/hpm/src/kernel.rs:
crates/hpm/src/pebs.rs:
crates/hpm/src/userlib.rs:
