/root/repo/target/release/deps/telemetry_counters-5c375e781eae4f24.d: crates/core/tests/telemetry_counters.rs

/root/repo/target/release/deps/telemetry_counters-5c375e781eae4f24: crates/core/tests/telemetry_counters.rs

crates/core/tests/telemetry_counters.rs:
