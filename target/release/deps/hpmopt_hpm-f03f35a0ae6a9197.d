/root/repo/target/release/deps/hpmopt_hpm-f03f35a0ae6a9197.d: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

/root/repo/target/release/deps/hpmopt_hpm-f03f35a0ae6a9197: crates/hpm/src/lib.rs crates/hpm/src/collector.rs crates/hpm/src/kernel.rs crates/hpm/src/pebs.rs crates/hpm/src/userlib.rs

crates/hpm/src/lib.rs:
crates/hpm/src/collector.rs:
crates/hpm/src/kernel.rs:
crates/hpm/src/pebs.rs:
crates/hpm/src/userlib.rs:
