/root/repo/target/release/deps/hpmopt_gc-6f55aa787405754d.d: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs

/root/repo/target/release/deps/hpmopt_gc-6f55aa787405754d: crates/gc/src/lib.rs crates/gc/src/classtable.rs crates/gc/src/freelist.rs crates/gc/src/heap.rs crates/gc/src/los.rs crates/gc/src/nursery.rs crates/gc/src/object.rs crates/gc/src/policy.rs crates/gc/src/raw.rs crates/gc/src/remset.rs crates/gc/src/semispace.rs crates/gc/src/stats.rs

crates/gc/src/lib.rs:
crates/gc/src/classtable.rs:
crates/gc/src/freelist.rs:
crates/gc/src/heap.rs:
crates/gc/src/los.rs:
crates/gc/src/nursery.rs:
crates/gc/src/object.rs:
crates/gc/src/policy.rs:
crates/gc/src/raw.rs:
crates/gc/src/remset.rs:
crates/gc/src/semispace.rs:
crates/gc/src/stats.rs:
