/root/repo/target/release/deps/collector_telemetry-00985b91325d493b.d: crates/hpm/tests/collector_telemetry.rs

/root/repo/target/release/deps/collector_telemetry-00985b91325d493b: crates/hpm/tests/collector_telemetry.rs

crates/hpm/tests/collector_telemetry.rs:
