/root/repo/target/release/deps/experiments-9795ddd91ba72eab.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-9795ddd91ba72eab: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
