/root/repo/target/release/deps/proptests-7aa144c9afa90131.d: crates/vm/tests/proptests.rs

/root/repo/target/release/deps/proptests-7aa144c9afa90131: crates/vm/tests/proptests.rs

crates/vm/tests/proptests.rs:
