/root/repo/target/release/deps/hpmopt_core-4772c6be21366080.d: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/libhpmopt_core-4772c6be21366080.rlib: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

/root/repo/target/release/deps/libhpmopt_core-4772c6be21366080.rmeta: crates/core/src/lib.rs crates/core/src/feedback.rs crates/core/src/interest.rs crates/core/src/mapping.rs crates/core/src/monitor.rs crates/core/src/phases.rs crates/core/src/policy.rs crates/core/src/runtime.rs

crates/core/src/lib.rs:
crates/core/src/feedback.rs:
crates/core/src/interest.rs:
crates/core/src/mapping.rs:
crates/core/src/monitor.rs:
crates/core/src/phases.rs:
crates/core/src/policy.rs:
crates/core/src/runtime.rs:
