/root/repo/target/release/deps/workloads_run-8abc69196ab280d4.d: tests/workloads_run.rs

/root/repo/target/release/deps/workloads_run-8abc69196ab280d4: tests/workloads_run.rs

tests/workloads_run.rs:
