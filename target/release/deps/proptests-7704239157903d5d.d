/root/repo/target/release/deps/proptests-7704239157903d5d.d: crates/gc/tests/proptests.rs

/root/repo/target/release/deps/proptests-7704239157903d5d: crates/gc/tests/proptests.rs

crates/gc/tests/proptests.rs:
