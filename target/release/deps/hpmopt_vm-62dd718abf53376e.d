/root/repo/target/release/deps/hpmopt_vm-62dd718abf53376e.d: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

/root/repo/target/release/deps/hpmopt_vm-62dd718abf53376e: crates/vm/src/lib.rs crates/vm/src/aos.rs crates/vm/src/compiler.rs crates/vm/src/config.rs crates/vm/src/hooks.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/methodtable.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/aos.rs:
crates/vm/src/compiler.rs:
crates/vm/src/config.rs:
crates/vm/src/hooks.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/methodtable.rs:
crates/vm/src/value.rs:
