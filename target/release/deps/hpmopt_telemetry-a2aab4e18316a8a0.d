/root/repo/target/release/deps/hpmopt_telemetry-a2aab4e18316a8a0.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/hpmopt_telemetry-a2aab4e18316a8a0: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/overhead.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/overhead.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/trace.rs:
