/root/repo/target/release/deps/proptests-9a250741f00711bf.d: crates/memsim/tests/proptests.rs

/root/repo/target/release/deps/proptests-9a250741f00711bf: crates/memsim/tests/proptests.rs

crates/memsim/tests/proptests.rs:
