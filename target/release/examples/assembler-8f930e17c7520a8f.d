/root/repo/target/release/examples/assembler-8f930e17c7520a8f.d: examples/assembler.rs

/root/repo/target/release/examples/assembler-8f930e17c7520a8f: examples/assembler.rs

examples/assembler.rs:
