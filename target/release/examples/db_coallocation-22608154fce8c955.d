/root/repo/target/release/examples/db_coallocation-22608154fce8c955.d: examples/db_coallocation.rs

/root/repo/target/release/examples/db_coallocation-22608154fce8c955: examples/db_coallocation.rs

examples/db_coallocation.rs:
