/root/repo/target/release/examples/custom_workload-f944d694e0e43e04.d: examples/custom_workload.rs

/root/repo/target/release/examples/custom_workload-f944d694e0e43e04: examples/custom_workload.rs

examples/custom_workload.rs:
