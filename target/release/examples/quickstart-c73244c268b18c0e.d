/root/repo/target/release/examples/quickstart-c73244c268b18c0e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c73244c268b18c0e: examples/quickstart.rs

examples/quickstart.rs:
