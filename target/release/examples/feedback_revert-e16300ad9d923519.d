/root/repo/target/release/examples/feedback_revert-e16300ad9d923519.d: examples/feedback_revert.rs

/root/repo/target/release/examples/feedback_revert-e16300ad9d923519: examples/feedback_revert.rs

examples/feedback_revert.rs:
