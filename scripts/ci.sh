#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: formatting, lints, and the
# tier-1 gate. The build is fully offline — no network needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q --workspace --release

echo "==> smoke: hpmopt-report db"
cargo run --release --bin hpmopt-report -- db -o target/ci-report-db.json >/dev/null

echo "CI OK"
