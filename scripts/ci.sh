#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: formatting, lints, and the
# tier-1 gate. The build is fully offline — no network needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q --workspace --release

echo "==> slow-path escape hatch: vm suite under the legacy per-step engine"
# Digest parity between the flattened and per-step engines is asserted
# in-process by the default build; this run proves the legacy engine
# still passes the full vm suite when forced via the feature flag.
cargo test -q -p hpmopt-vm --release --features slow-path

echo "==> profile round-trip tests"
cargo test -q -p hpmopt-profile --release
cargo test -q --release --test profile_warm_start

echo "==> smoke: hpmopt-report db (fails on nonzero telemetry perturbation)"
cargo run --release --bin hpmopt-report -- db -o target/ci-report-db.json >/dev/null

echo "==> smoke: hpmopt-report --prom (deterministic Prometheus exposition)"
cargo run --release --bin hpmopt-report -- fop --prom -o target/ci-report-fop-prom.json \
    >target/ci-prom-a.txt 2>/dev/null
cargo run --release --bin hpmopt-report -- fop --prom -o target/ci-report-fop-prom.json \
    >target/ci-prom-b.txt 2>/dev/null
cmp target/ci-prom-a.txt target/ci-prom-b.txt

echo "==> smoke: fast hpmopt-bench measurement (one workload, two seeds)"
# --no-serve skips the open-loop serve row: this smoke only proves the
# measurement path writes a parseable baseline.
cargo run --release --bin hpmopt-bench -- --update --no-serve \
    --workloads fop --seeds 2 --out target/ci-bench-smoke.json >/dev/null

echo "==> perf trajectory gate: hpmopt-bench --check vs committed baseline"
# Gates workload cycles, stress digests, perturbation, and the serve
# open-loop row (queue-wait tail, evictions, multi-worker speedup).
cargo run --release --bin hpmopt-bench -- --check

echo "==> smoke: warm-start a profile and inspect it"
rm -f target/ci-db.hpmprof
cargo run --release --bin hpmopt-report -- db --profile target/ci-db.hpmprof \
    -o target/ci-report-db-warm.json >/dev/null
cargo run --release -p hpmopt-profile -- inspect target/ci-db.hpmprof >/dev/null

echo "==> smoke: bounded stress run (differential oracles over fresh seeds)"
# Every seed now also runs arm G: the full tiered pipeline (tier-2
# region compilation, deopt, 4 KiB LRU code cache) under monitoring,
# checking digest equality and zero sample misattribution across churn.
cargo run --release -p hpmopt-stress -- run --seeds 25 --time-budget 60

echo "==> smoke: tiered-JIT churn (arm G must evict on the pinned clean seeds)"
cargo test -q --release -p hpmopt-stress clean_scenarios_pass_all_oracles

echo "==> smoke: stress corpus replays as recorded"
cargo run --release -p hpmopt-stress -- replay tests/corpus/*.case

echo "==> smoke: hpmopt-serve bench (zero perturbation, warm beats cold)"
# --check fails the run unless every completed job's digest matches the
# unmonitored baseline, warm jobs beat cold to the first decision, AND
# the open-loop section shows 4 virtual workers strictly outrunning 1.
cargo run --release --bin hpmopt-serve -p hpmopt-serve -- bench --workers 1 --check \
    >target/ci-serve-w1.txt 2>/dev/null
cargo run --release --bin hpmopt-serve -p hpmopt-serve -- bench --workers 4 --check \
    >target/ci-serve-w4.txt 2>/dev/null
# The deterministic summary — closed-loop rounds AND the QPS-paced
# open-loop section — must be byte-identical at any concurrency.
cmp target/ci-serve-w1.txt target/ci-serve-w4.txt

echo "==> smoke: serve fairness + bounded-repo eviction integration tests"
cargo test -q --release -p hpmopt-serve --test service -- \
    killed_jobs_never_merge evicted_fingerprint open_loop_fairness

echo "CI OK"
