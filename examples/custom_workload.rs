//! Build your own guest program with the bytecode builder and run it
//! under the monitored runtime — the path a downstream user takes to
//! study their own data structure's locality.
//!
//! The program models a cache-hostile hash map: `Bucket` objects whose
//! entry arrays live in a different size class, probed in shuffled order.
//! HPM-guided co-allocation discovers `Bucket::entries` as the hot edge
//! and co-locates each bucket with its array.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use hpmopt::bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt::bytecode::{ElemKind, FieldType};
use hpmopt::core::runtime::{HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;

const BUCKETS: i64 = 4096;

fn build_program() -> hpmopt::bytecode::Program {
    let mut pb = ProgramBuilder::new();
    let bucket = pb.add_class(
        "Bucket",
        &[("entries", FieldType::Ref), ("count", FieldType::Int)],
    );
    let entries = pb.field_id(bucket, "entries").unwrap();
    let count = pb.field_id(bucket, "count").unwrap();
    let table = pb.add_static("table", FieldType::Ref);
    let found = pb.add_static("found", FieldType::Int);

    // rebuild(): allocate a fresh table of buckets.
    let rebuild = pb.declare_method("rebuild", 0, false);
    {
        let mut m = MethodBuilder::new("rebuild", 0, 2, false);
        let b = 1;
        m.const_i(BUCKETS);
        m.new_array(ElemKind::Ref);
        m.put_static(table);
        m.for_loop(
            0,
            |m| {
                m.const_i(BUCKETS);
            },
            |m| {
                m.new_object(bucket);
                m.store(b);
                m.load(b);
                m.const_i(4);
                m.new_array(ElemKind::I64);
                m.put_field(entries);
                m.load(b);
                m.const_i(4);
                m.put_field(count);
                m.get_static(table);
                m.load(0);
                m.load(b);
                m.array_set(ElemKind::Ref);
            },
        );
        m.ret();
        pb.define_method(rebuild, m);
    }

    // probe(h) -> int: read bucket h's first entry through
    // Bucket::entries — the instruction of interest.
    let probe = pb.declare_method("probe", 1, true);
    {
        let mut m = MethodBuilder::new("probe", 1, 1, true);
        m.get_static(table);
        m.load(0);
        m.array_get(ElemKind::Ref);
        m.store(1);
        m.load(1);
        m.get_field(entries);
        m.const_i(0);
        m.array_get(ElemKind::I64);
        m.load(1);
        m.get_field(count);
        m.add();
        m.ret_val();
        pb.define_method(probe, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let rng = 1;
    m.const_i(0xfeed_f00d);
    m.store(rng);
    m.for_loop(
        0,
        |m| {
            m.const_i(8); // rounds: rebuild + probe storm
        },
        |m| {
            m.call(rebuild);
            let q = m.new_local();
            m.for_loop(
                q,
                |m| {
                    m.const_i(60_000);
                },
                |m| {
                    m.get_static(found);
                    m.rng_next(rng);
                    m.const_i(BUCKETS);
                    m.rem();
                    m.call(probe);
                    m.add();
                    m.put_static(found);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);
    pb.finish().expect("program verifies")
}

fn main() {
    let program = build_program();
    println!(
        "custom program: {} classes, {} methods, {} bytecodes",
        program.classes().len(),
        program.methods().len(),
        program.total_instructions()
    );

    let mut results = Vec::new();
    for coalloc in [false, true] {
        let vm = VmConfig {
            heap: HeapConfig {
                heap_bytes: 4 * 1024 * 1024,
                nursery_bytes: 256 * 1024,
                los_bytes: 64 * 1024 * 1024,
                collector: CollectorKind::GenMs,
                ..Default::default()
            },
            ..VmConfig::default()
        };
        let config = RunConfig {
            vm,
            hpm: HpmConfig {
                interval: SamplingInterval::Fixed(1024),
                buffer_capacity: 256,
                cpu_hz: 100_000_000,
                ..HpmConfig::default()
            },
            coalloc,
            ..RunConfig::default()
        };
        let report = HpmRuntime::new(config).run(&program).expect("runs");
        println!(
            "coalloc={coalloc:<5}  cycles={:>12}  L1 misses={:>9}  co-allocated={:>6}",
            report.cycles, report.vm.mem.l1_misses, report.vm.gc.objects_coallocated
        );
        for (class, field) in &report.decisions {
            println!("  decision: co-allocate {field} with {class}");
        }
        results.push(report);
    }
    let ratio = results[1].vm.mem.l1_misses as f64 / results[0].vm.mem.l1_misses as f64;
    println!(
        "\nL1 miss change from co-allocation: {:+.1}%",
        (ratio - 1.0) * 100.0
    );
}
