//! The paper's headline experiment on one page: run `db` with and
//! without HPM-guided co-allocation and compare execution time and L1
//! misses (Section 6.3, Figures 4 and 5).
//!
//! ```text
//! cargo run --release --example db_coallocation
//! ```

use hpmopt::core::runtime::{HpmRuntime, RunConfig, RunReport};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{self, Size};

fn run_db(coalloc: bool, sampling: SamplingInterval) -> RunReport {
    let w = workloads::by_name("db", Size::Small).unwrap();
    let vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    let config = RunConfig {
        vm,
        hpm: HpmConfig {
            interval: sampling,
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc,
        ..RunConfig::default()
    };
    HpmRuntime::new(config)
        .run(&w.program)
        .expect("db completes")
}

fn main() {
    println!("running db without monitoring (baseline)...");
    let base = run_db(false, SamplingInterval::Off);
    println!("running db with HPM-guided co-allocation...");
    let opt = run_db(
        true,
        SamplingInterval::Auto {
            target_per_sec: 1000,
        },
    );

    let time_ratio = opt.cycles as f64 / base.cycles as f64;
    let miss_ratio = opt.vm.mem.l1_misses as f64 / base.vm.mem.l1_misses as f64;

    println!("\n                      baseline     co-allocation");
    println!(
        "cycles            {:>12}    {:>12}  ({:+.1}%)",
        base.cycles,
        opt.cycles,
        (time_ratio - 1.0) * 100.0
    );
    println!(
        "L1 misses         {:>12}    {:>12}  ({:+.1}%)",
        base.vm.mem.l1_misses,
        opt.vm.mem.l1_misses,
        (miss_ratio - 1.0) * 100.0
    );
    println!(
        "objects co-allocated: {} (of {} promoted)",
        opt.vm.gc.objects_coallocated, opt.vm.gc.objects_promoted
    );
    println!(
        "monitoring overhead: {:.2}% of cycles",
        100.0 * opt.vm.monitor_cycles as f64 / opt.cycles as f64
    );
    for (class, field) in &opt.decisions {
        println!("decision: co-allocate {field} with its {class} parent");
    }

    assert!(miss_ratio < 1.0, "co-allocation should reduce L1 misses");
    println!(
        "\nthe paper reports up to -28% L1 misses and -13.9% execution time for db \
         on real hardware; the simulated shape should agree in direction."
    );
}
