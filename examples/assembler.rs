//! Write a guest program as assembly text, run it monitored, and watch
//! the pipeline find its hot field.
//!
//! ```text
//! cargo run --release --example assembler
//! ```

use hpmopt::bytecode::asm;
use hpmopt::core::runtime::{HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;

const SOURCE: &str = r"
    # A ring of Cell objects, each holding a small payload array.
    # Walking the ring dereferences Cell.data every step - the hot edge.
    class Cell { ref next; ref data; }
    static ring: ref;
    static sum: int;

    method build(1) locals=3 {        # build(n): ring of n cells
        const_null
        store 1
    fill:
        load 0
        const 0
        le
        jump_if close
        new Cell
        store 2
        load 2
        const 4
        new_array i64
        put_field Cell.data
        load 2
        load 1
        put_field Cell.next
        load 2
        store 1
        load 0
        const 1
        sub
        store 0
        jump fill
    close:
        load 1
        put_static ring
        return
    }

    method walk(1) locals=2 {         # walk(steps)
        get_static ring
        store 1
    step:
        load 0
        const 0
        le
        jump_if done
        load 1
        is_null
        jump_if rewind
        get_static sum
        load 1
        get_field Cell.data
        const 0
        array_get i64
        add
        put_static sum
        load 1
        get_field Cell.next
        store 1
        load 0
        const 1
        sub
        store 0
        jump step
    rewind:
        get_static ring
        store 1
        jump step
    done:
        return
    }

    method main(0) locals=1 {
        const 0
        store 0
    round:
        load 0
        const 6
        ge
        jump_if finished
        const 3000
        call build
        const 60000
        call walk
        load 0
        const 1
        add
        store 0
        jump round
    finished:
        return
    }
";

fn main() {
    let program = asm::assemble(SOURCE).expect("assembly is well-formed");
    println!(
        "assembled: {} classes, {} methods, {} instructions",
        program.classes().len(),
        program.methods().len(),
        program.total_instructions()
    );

    let vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: 4 * 1024 * 1024,
            nursery_bytes: 256 * 1024,
            los_bytes: 16 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    let config = RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(1024),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        ..RunConfig::default()
    };
    let report = HpmRuntime::new(config).run(&program).expect("program runs");

    println!(
        "cycles: {}, L1 misses: {}",
        report.cycles, report.vm.mem.l1_misses
    );
    println!(
        "hottest fields: {:?}",
        &report.field_totals[..report.field_totals.len().min(3)]
    );
    println!("decisions: {:?}", report.decisions);
    println!("co-allocated: {}", report.vm.gc.objects_coallocated);
}
