//! Quickstart: run one benchmark under HPM-guided co-allocation and
//! print what the monitoring infrastructure saw.
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use hpmopt::core::runtime::{HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{self, Size};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "db".to_string());
    let Some(w) = workloads::by_name(&name, Size::Small) else {
        eprintln!(
            "unknown workload {name:?}; available: {}",
            workloads::names().join(", ")
        );
        std::process::exit(2);
    };

    println!("workload: {} ({}) — {}", w.name, w.suite, w.description);

    let vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    let config = RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(2048),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        ..RunConfig::default()
    };

    let report = HpmRuntime::new(config)
        .run(&w.program)
        .expect("workload completes");

    println!("\nexecution");
    println!("  cycles:            {:>14}", report.cycles);
    println!("  bytecodes:         {:>14}", report.vm.bytecodes_executed);
    println!("  L1 misses:         {:>14}", report.vm.mem.l1_misses);
    println!("  L2 misses:         {:>14}", report.vm.mem.l2_misses);

    println!("\ngarbage collection");
    println!(
        "  minor collections: {:>14}",
        report.vm.gc.minor_collections
    );
    println!(
        "  major collections: {:>14}",
        report.vm.gc.major_collections
    );
    println!("  objects promoted:  {:>14}", report.vm.gc.objects_promoted);
    println!(
        "  co-allocated:      {:>14}",
        report.vm.gc.objects_coallocated
    );

    println!("\nmonitoring");
    println!("  events observed:   {:>14}", report.hpm.events);
    println!("  samples taken:     {:>14}", report.hpm.samples);
    println!("  attributed:        {:>14}", report.attribution.attributed);
    println!("  overhead cycles:   {:>14}", report.vm.monitor_cycles);

    println!("\nhottest fields (by sampled misses)");
    for (field, n) in report.field_totals.iter().take(5) {
        println!("  {field:<24} {n:>8}");
    }

    println!("\nco-allocation decisions");
    if report.decisions.is_empty() {
        println!("  (none — no field crossed the miss threshold)");
    }
    for (class, field) in &report.decisions {
        println!("  co-allocate {field} children with their {class} parent");
    }
}
