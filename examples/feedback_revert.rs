//! Figure 8 live: install a deliberately *bad* co-allocation decision
//! mid-run (one cache line of padding between parent and child) and
//! watch the feedback loop detect the regression and revert it.
//!
//! ```text
//! cargo run --release --example feedback_revert
//! ```

use hpmopt::core::feedback::FeedbackConfig;
use hpmopt::core::policy::PolicyEvent;
use hpmopt::core::runtime::{ForcedBadPlacement, HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{self, Size};

fn main() {
    let w = workloads::by_name("db", Size::Small).unwrap();
    let vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    let config = RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(512),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        watch_fields: vec![("String".into(), "value".into())],
        forced_bad: Some(ForcedBadPlacement {
            class: "String".into(),
            field: "value".into(),
            gap_bytes: 128,
            at_cycles: 60_000_000,
        }),
        feedback: FeedbackConfig {
            tolerance: 1.3,
            revert_after_periods: 3,
            min_period_misses: 4,
        },
        ..RunConfig::default()
    };

    let report = HpmRuntime::new(config)
        .run(&w.program)
        .expect("db completes");

    println!("policy timeline:");
    for e in &report.policy_events {
        match e {
            PolicyEvent::Enabled { cycles, .. } => {
                println!(
                    "  {:>7.1}M cycles  co-allocation enabled (miss-driven)",
                    *cycles as f64 / 1e6
                );
            }
            PolicyEvent::Pinned {
                cycles, gap_bytes, ..
            } => {
                println!(
                    "  {:>7.1}M cycles  BAD placement pinned ({gap_bytes}-byte gap between parent and child)",
                    *cycles as f64 / 1e6
                );
            }
            PolicyEvent::Reverted { cycles, .. } => {
                println!(
                    "  {:>7.1}M cycles  feedback detected the regression and reverted",
                    *cycles as f64 / 1e6
                );
            }
            PolicyEvent::WarmStarted { cycles, .. } => {
                println!(
                    "  {:>7.1}M cycles  co-allocation seeded from a saved profile",
                    *cycles as f64 / 1e6
                );
            }
        }
    }

    println!("\nString::value miss curve (cumulative sampled misses per period):");
    if let Some((_, series)) = report.series.first() {
        let mut prev = 0;
        for p in series {
            let delta = p.total - prev;
            prev = p.total;
            println!(
                "  {:>7.1}M cycles  +{delta:<6} {}",
                p.cycles as f64 / 1e6,
                "#".repeat((delta as usize / 8).min(60))
            );
        }
    }

    assert!(
        report.revert_count() > 0,
        "the feedback loop must revert the bad placement"
    );
    println!("\nthe miss rate rises after the pin and returns after the revert (Figure 8).");
}
